
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/spice/cells.cpp" "src/CMakeFiles/charlie_spice.dir/spice/cells.cpp.o" "gcc" "src/CMakeFiles/charlie_spice.dir/spice/cells.cpp.o.d"
  "/root/repo/src/spice/characterize.cpp" "src/CMakeFiles/charlie_spice.dir/spice/characterize.cpp.o" "gcc" "src/CMakeFiles/charlie_spice.dir/spice/characterize.cpp.o.d"
  "/root/repo/src/spice/dcop.cpp" "src/CMakeFiles/charlie_spice.dir/spice/dcop.cpp.o" "gcc" "src/CMakeFiles/charlie_spice.dir/spice/dcop.cpp.o.d"
  "/root/repo/src/spice/element.cpp" "src/CMakeFiles/charlie_spice.dir/spice/element.cpp.o" "gcc" "src/CMakeFiles/charlie_spice.dir/spice/element.cpp.o.d"
  "/root/repo/src/spice/elements.cpp" "src/CMakeFiles/charlie_spice.dir/spice/elements.cpp.o" "gcc" "src/CMakeFiles/charlie_spice.dir/spice/elements.cpp.o.d"
  "/root/repo/src/spice/lu.cpp" "src/CMakeFiles/charlie_spice.dir/spice/lu.cpp.o" "gcc" "src/CMakeFiles/charlie_spice.dir/spice/lu.cpp.o.d"
  "/root/repo/src/spice/mosfet.cpp" "src/CMakeFiles/charlie_spice.dir/spice/mosfet.cpp.o" "gcc" "src/CMakeFiles/charlie_spice.dir/spice/mosfet.cpp.o.d"
  "/root/repo/src/spice/netlist.cpp" "src/CMakeFiles/charlie_spice.dir/spice/netlist.cpp.o" "gcc" "src/CMakeFiles/charlie_spice.dir/spice/netlist.cpp.o.d"
  "/root/repo/src/spice/newton.cpp" "src/CMakeFiles/charlie_spice.dir/spice/newton.cpp.o" "gcc" "src/CMakeFiles/charlie_spice.dir/spice/newton.cpp.o.d"
  "/root/repo/src/spice/technology.cpp" "src/CMakeFiles/charlie_spice.dir/spice/technology.cpp.o" "gcc" "src/CMakeFiles/charlie_spice.dir/spice/technology.cpp.o.d"
  "/root/repo/src/spice/transient.cpp" "src/CMakeFiles/charlie_spice.dir/spice/transient.cpp.o" "gcc" "src/CMakeFiles/charlie_spice.dir/spice/transient.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/CMakeFiles/charlie_util.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/charlie_waveform.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
