file(REMOVE_RECURSE
  "libcharlie_spice.a"
)
