file(REMOVE_RECURSE
  "CMakeFiles/charlie_spice.dir/spice/cells.cpp.o"
  "CMakeFiles/charlie_spice.dir/spice/cells.cpp.o.d"
  "CMakeFiles/charlie_spice.dir/spice/characterize.cpp.o"
  "CMakeFiles/charlie_spice.dir/spice/characterize.cpp.o.d"
  "CMakeFiles/charlie_spice.dir/spice/dcop.cpp.o"
  "CMakeFiles/charlie_spice.dir/spice/dcop.cpp.o.d"
  "CMakeFiles/charlie_spice.dir/spice/element.cpp.o"
  "CMakeFiles/charlie_spice.dir/spice/element.cpp.o.d"
  "CMakeFiles/charlie_spice.dir/spice/elements.cpp.o"
  "CMakeFiles/charlie_spice.dir/spice/elements.cpp.o.d"
  "CMakeFiles/charlie_spice.dir/spice/lu.cpp.o"
  "CMakeFiles/charlie_spice.dir/spice/lu.cpp.o.d"
  "CMakeFiles/charlie_spice.dir/spice/mosfet.cpp.o"
  "CMakeFiles/charlie_spice.dir/spice/mosfet.cpp.o.d"
  "CMakeFiles/charlie_spice.dir/spice/netlist.cpp.o"
  "CMakeFiles/charlie_spice.dir/spice/netlist.cpp.o.d"
  "CMakeFiles/charlie_spice.dir/spice/newton.cpp.o"
  "CMakeFiles/charlie_spice.dir/spice/newton.cpp.o.d"
  "CMakeFiles/charlie_spice.dir/spice/technology.cpp.o"
  "CMakeFiles/charlie_spice.dir/spice/technology.cpp.o.d"
  "CMakeFiles/charlie_spice.dir/spice/transient.cpp.o"
  "CMakeFiles/charlie_spice.dir/spice/transient.cpp.o.d"
  "libcharlie_spice.a"
  "libcharlie_spice.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/charlie_spice.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
