# Empty dependencies file for charlie_spice.
# This may be replaced when dependencies are built.
