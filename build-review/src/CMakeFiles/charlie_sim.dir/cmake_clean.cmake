file(REMOVE_RECURSE
  "CMakeFiles/charlie_sim.dir/sim/accuracy.cpp.o"
  "CMakeFiles/charlie_sim.dir/sim/accuracy.cpp.o.d"
  "CMakeFiles/charlie_sim.dir/sim/batch_runner.cpp.o"
  "CMakeFiles/charlie_sim.dir/sim/batch_runner.cpp.o.d"
  "CMakeFiles/charlie_sim.dir/sim/channel.cpp.o"
  "CMakeFiles/charlie_sim.dir/sim/channel.cpp.o.d"
  "CMakeFiles/charlie_sim.dir/sim/circuit.cpp.o"
  "CMakeFiles/charlie_sim.dir/sim/circuit.cpp.o.d"
  "CMakeFiles/charlie_sim.dir/sim/event_heap.cpp.o"
  "CMakeFiles/charlie_sim.dir/sim/event_heap.cpp.o.d"
  "CMakeFiles/charlie_sim.dir/sim/exp_channel.cpp.o"
  "CMakeFiles/charlie_sim.dir/sim/exp_channel.cpp.o.d"
  "CMakeFiles/charlie_sim.dir/sim/gate_models.cpp.o"
  "CMakeFiles/charlie_sim.dir/sim/gate_models.cpp.o.d"
  "CMakeFiles/charlie_sim.dir/sim/hybrid_gate_channel.cpp.o"
  "CMakeFiles/charlie_sim.dir/sim/hybrid_gate_channel.cpp.o.d"
  "CMakeFiles/charlie_sim.dir/sim/inertial.cpp.o"
  "CMakeFiles/charlie_sim.dir/sim/inertial.cpp.o.d"
  "CMakeFiles/charlie_sim.dir/sim/involution.cpp.o"
  "CMakeFiles/charlie_sim.dir/sim/involution.cpp.o.d"
  "CMakeFiles/charlie_sim.dir/sim/nor_models.cpp.o"
  "CMakeFiles/charlie_sim.dir/sim/nor_models.cpp.o.d"
  "CMakeFiles/charlie_sim.dir/sim/pure_delay.cpp.o"
  "CMakeFiles/charlie_sim.dir/sim/pure_delay.cpp.o.d"
  "CMakeFiles/charlie_sim.dir/sim/run_channel.cpp.o"
  "CMakeFiles/charlie_sim.dir/sim/run_channel.cpp.o.d"
  "CMakeFiles/charlie_sim.dir/sim/sumexp_channel.cpp.o"
  "CMakeFiles/charlie_sim.dir/sim/sumexp_channel.cpp.o.d"
  "CMakeFiles/charlie_sim.dir/sim/surface_nor_channel.cpp.o"
  "CMakeFiles/charlie_sim.dir/sim/surface_nor_channel.cpp.o.d"
  "libcharlie_sim.a"
  "libcharlie_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/charlie_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
