
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/accuracy.cpp" "src/CMakeFiles/charlie_sim.dir/sim/accuracy.cpp.o" "gcc" "src/CMakeFiles/charlie_sim.dir/sim/accuracy.cpp.o.d"
  "/root/repo/src/sim/batch_runner.cpp" "src/CMakeFiles/charlie_sim.dir/sim/batch_runner.cpp.o" "gcc" "src/CMakeFiles/charlie_sim.dir/sim/batch_runner.cpp.o.d"
  "/root/repo/src/sim/channel.cpp" "src/CMakeFiles/charlie_sim.dir/sim/channel.cpp.o" "gcc" "src/CMakeFiles/charlie_sim.dir/sim/channel.cpp.o.d"
  "/root/repo/src/sim/circuit.cpp" "src/CMakeFiles/charlie_sim.dir/sim/circuit.cpp.o" "gcc" "src/CMakeFiles/charlie_sim.dir/sim/circuit.cpp.o.d"
  "/root/repo/src/sim/event_heap.cpp" "src/CMakeFiles/charlie_sim.dir/sim/event_heap.cpp.o" "gcc" "src/CMakeFiles/charlie_sim.dir/sim/event_heap.cpp.o.d"
  "/root/repo/src/sim/exp_channel.cpp" "src/CMakeFiles/charlie_sim.dir/sim/exp_channel.cpp.o" "gcc" "src/CMakeFiles/charlie_sim.dir/sim/exp_channel.cpp.o.d"
  "/root/repo/src/sim/gate_models.cpp" "src/CMakeFiles/charlie_sim.dir/sim/gate_models.cpp.o" "gcc" "src/CMakeFiles/charlie_sim.dir/sim/gate_models.cpp.o.d"
  "/root/repo/src/sim/hybrid_gate_channel.cpp" "src/CMakeFiles/charlie_sim.dir/sim/hybrid_gate_channel.cpp.o" "gcc" "src/CMakeFiles/charlie_sim.dir/sim/hybrid_gate_channel.cpp.o.d"
  "/root/repo/src/sim/inertial.cpp" "src/CMakeFiles/charlie_sim.dir/sim/inertial.cpp.o" "gcc" "src/CMakeFiles/charlie_sim.dir/sim/inertial.cpp.o.d"
  "/root/repo/src/sim/involution.cpp" "src/CMakeFiles/charlie_sim.dir/sim/involution.cpp.o" "gcc" "src/CMakeFiles/charlie_sim.dir/sim/involution.cpp.o.d"
  "/root/repo/src/sim/nor_models.cpp" "src/CMakeFiles/charlie_sim.dir/sim/nor_models.cpp.o" "gcc" "src/CMakeFiles/charlie_sim.dir/sim/nor_models.cpp.o.d"
  "/root/repo/src/sim/pure_delay.cpp" "src/CMakeFiles/charlie_sim.dir/sim/pure_delay.cpp.o" "gcc" "src/CMakeFiles/charlie_sim.dir/sim/pure_delay.cpp.o.d"
  "/root/repo/src/sim/run_channel.cpp" "src/CMakeFiles/charlie_sim.dir/sim/run_channel.cpp.o" "gcc" "src/CMakeFiles/charlie_sim.dir/sim/run_channel.cpp.o.d"
  "/root/repo/src/sim/sumexp_channel.cpp" "src/CMakeFiles/charlie_sim.dir/sim/sumexp_channel.cpp.o" "gcc" "src/CMakeFiles/charlie_sim.dir/sim/sumexp_channel.cpp.o.d"
  "/root/repo/src/sim/surface_nor_channel.cpp" "src/CMakeFiles/charlie_sim.dir/sim/surface_nor_channel.cpp.o" "gcc" "src/CMakeFiles/charlie_sim.dir/sim/surface_nor_channel.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/CMakeFiles/charlie_core.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/charlie_spice.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/charlie_waveform.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/charlie_util.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/charlie_fit.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/charlie_ode.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
