# Empty compiler generated dependencies file for charlie_sim.
# This may be replaced when dependencies are built.
