file(REMOVE_RECURSE
  "libcharlie_sim.a"
)
