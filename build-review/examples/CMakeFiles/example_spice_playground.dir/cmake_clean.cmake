file(REMOVE_RECURSE
  "CMakeFiles/example_spice_playground.dir/spice_playground.cpp.o"
  "CMakeFiles/example_spice_playground.dir/spice_playground.cpp.o.d"
  "example_spice_playground"
  "example_spice_playground.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_spice_playground.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
