# Empty compiler generated dependencies file for example_spice_playground.
# This may be replaced when dependencies are built.
