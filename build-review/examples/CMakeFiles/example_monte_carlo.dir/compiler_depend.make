# Empty compiler generated dependencies file for example_monte_carlo.
# This may be replaced when dependencies are built.
