file(REMOVE_RECURSE
  "CMakeFiles/example_monte_carlo.dir/monte_carlo.cpp.o"
  "CMakeFiles/example_monte_carlo.dir/monte_carlo.cpp.o.d"
  "example_monte_carlo"
  "example_monte_carlo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_monte_carlo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
