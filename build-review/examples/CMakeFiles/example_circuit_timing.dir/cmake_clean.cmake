file(REMOVE_RECURSE
  "CMakeFiles/example_circuit_timing.dir/circuit_timing.cpp.o"
  "CMakeFiles/example_circuit_timing.dir/circuit_timing.cpp.o.d"
  "example_circuit_timing"
  "example_circuit_timing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_circuit_timing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
