# Empty compiler generated dependencies file for example_circuit_timing.
# This may be replaced when dependencies are built.
