# Empty compiler generated dependencies file for example_parametrize_gate.
# This may be replaced when dependencies are built.
