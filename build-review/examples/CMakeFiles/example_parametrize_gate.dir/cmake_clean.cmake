file(REMOVE_RECURSE
  "CMakeFiles/example_parametrize_gate.dir/parametrize_gate.cpp.o"
  "CMakeFiles/example_parametrize_gate.dir/parametrize_gate.cpp.o.d"
  "example_parametrize_gate"
  "example_parametrize_gate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_parametrize_gate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
