file(REMOVE_RECURSE
  "CMakeFiles/example_trace_accuracy.dir/trace_accuracy.cpp.o"
  "CMakeFiles/example_trace_accuracy.dir/trace_accuracy.cpp.o.d"
  "example_trace_accuracy"
  "example_trace_accuracy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_trace_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
