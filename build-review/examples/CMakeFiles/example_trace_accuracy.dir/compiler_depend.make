# Empty compiler generated dependencies file for example_trace_accuracy.
# This may be replaced when dependencies are built.
