file(REMOVE_RECURSE
  "CMakeFiles/example_mis_sweep.dir/mis_sweep.cpp.o"
  "CMakeFiles/example_mis_sweep.dir/mis_sweep.cpp.o.d"
  "example_mis_sweep"
  "example_mis_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_mis_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
