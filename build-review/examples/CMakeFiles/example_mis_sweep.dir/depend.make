# Empty dependencies file for example_mis_sweep.
# This may be replaced when dependencies are built.
