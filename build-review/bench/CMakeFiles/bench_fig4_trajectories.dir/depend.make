# Empty dependencies file for bench_fig4_trajectories.
# This may be replaced when dependencies are built.
