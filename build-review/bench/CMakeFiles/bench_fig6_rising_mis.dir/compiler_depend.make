# Empty compiler generated dependencies file for bench_fig6_rising_mis.
# This may be replaced when dependencies are built.
