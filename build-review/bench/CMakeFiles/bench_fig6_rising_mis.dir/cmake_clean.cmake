file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_rising_mis.dir/bench_fig6_rising_mis.cpp.o"
  "CMakeFiles/bench_fig6_rising_mis.dir/bench_fig6_rising_mis.cpp.o.d"
  "bench_fig6_rising_mis"
  "bench_fig6_rising_mis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_rising_mis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
