# Empty compiler generated dependencies file for bench_fig8_pure_delay.
# This may be replaced when dependencies are built.
