file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_pure_delay.dir/bench_fig8_pure_delay.cpp.o"
  "CMakeFiles/bench_fig8_pure_delay.dir/bench_fig8_pure_delay.cpp.o.d"
  "bench_fig8_pure_delay"
  "bench_fig8_pure_delay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_pure_delay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
