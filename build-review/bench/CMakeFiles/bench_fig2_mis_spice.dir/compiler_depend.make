# Empty compiler generated dependencies file for bench_fig2_mis_spice.
# This may be replaced when dependencies are built.
