file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_mis_spice.dir/bench_fig2_mis_spice.cpp.o"
  "CMakeFiles/bench_fig2_mis_spice.dir/bench_fig2_mis_spice.cpp.o.d"
  "bench_fig2_mis_spice"
  "bench_fig2_mis_spice.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_mis_spice.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
