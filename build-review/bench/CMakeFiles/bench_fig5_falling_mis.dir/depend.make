# Empty dependencies file for bench_fig5_falling_mis.
# This may be replaced when dependencies are built.
