file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_falling_mis.dir/bench_fig5_falling_mis.cpp.o"
  "CMakeFiles/bench_fig5_falling_mis.dir/bench_fig5_falling_mis.cpp.o.d"
  "bench_fig5_falling_mis"
  "bench_fig5_falling_mis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_falling_mis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
