
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_batch_throughput.cpp" "bench/CMakeFiles/bench_batch_throughput.dir/bench_batch_throughput.cpp.o" "gcc" "bench/CMakeFiles/bench_batch_throughput.dir/bench_batch_throughput.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/CMakeFiles/charlie_sim.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/charlie_core.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/charlie_fit.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/charlie_ode.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/charlie_spice.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/charlie_waveform.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/charlie_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
