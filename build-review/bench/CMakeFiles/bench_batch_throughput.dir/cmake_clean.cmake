file(REMOVE_RECURSE
  "CMakeFiles/bench_batch_throughput.dir/bench_batch_throughput.cpp.o"
  "CMakeFiles/bench_batch_throughput.dir/bench_batch_throughput.cpp.o.d"
  "bench_batch_throughput"
  "bench_batch_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_batch_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
