# Empty compiler generated dependencies file for bench_runtime_overhead.
# This may be replaced when dependencies are built.
