file(REMOVE_RECURSE
  "CMakeFiles/bench_runtime_overhead.dir/bench_runtime_overhead.cpp.o"
  "CMakeFiles/bench_runtime_overhead.dir/bench_runtime_overhead.cpp.o.d"
  "bench_runtime_overhead"
  "bench_runtime_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_runtime_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
