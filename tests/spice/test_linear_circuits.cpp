// MNA + transient validated on linear circuits with closed-form solutions.
#include <gtest/gtest.h>

#include <cmath>

#include "spice/dcop.hpp"
#include "spice/netlist.hpp"
#include "spice/transient.hpp"

namespace charlie::spice {
namespace {

TEST(LinearDc, VoltageDivider) {
  Netlist nl;
  const NodeId top = nl.node("top");
  const NodeId mid = nl.node("mid");
  nl.add_vsource(top, kGround, 10.0);
  nl.add_resistor(top, mid, 1e3);
  nl.add_resistor(mid, kGround, 3e3);
  const auto x = dc_operating_point(nl);
  EXPECT_NEAR(x[mid - 1], 7.5, 1e-6);
}

TEST(LinearDc, CurrentSourceIntoResistor) {
  Netlist nl;
  const NodeId n = nl.node("n");
  nl.add_isource(kGround, n, 1e-3);  // 1 mA into n
  nl.add_resistor(n, kGround, 2e3);
  const auto x = dc_operating_point(nl);
  EXPECT_NEAR(x[n - 1], 2.0, 1e-6);
}

TEST(LinearDc, WheatstoneBridge) {
  Netlist nl;
  const NodeId vin = nl.node("vin");
  const NodeId left = nl.node("left");
  const NodeId right = nl.node("right");
  nl.add_vsource(vin, kGround, 1.0);
  nl.add_resistor(vin, left, 1e3);
  nl.add_resistor(left, kGround, 1e3);
  nl.add_resistor(vin, right, 2e3);
  nl.add_resistor(right, kGround, 2e3);
  nl.add_resistor(left, right, 5e3);  // bridge arm, balanced: no current
  const auto x = dc_operating_point(nl);
  EXPECT_NEAR(x[left - 1], 0.5, 1e-6);
  EXPECT_NEAR(x[right - 1], 0.5, 1e-6);
}

TEST(LinearDc, BranchCurrentOfVoltageSource) {
  Netlist nl;
  const NodeId n = nl.node("n");
  nl.add_vsource(n, kGround, 5.0);
  nl.add_resistor(n, kGround, 1e3);
  const auto x = dc_operating_point(nl);
  // Branch current is the last unknown; source supplies 5 mA (current
  // flows out of + terminal through the resistor, so the branch variable
  // -- current into the + terminal -- is -5 mA).
  EXPECT_NEAR(std::fabs(x[nl.n_nodes() - 1]), 5e-3, 1e-6);
}

TEST(LinearTransient, RcChargingCurve) {
  Netlist nl;
  const NodeId in = nl.node("in");
  const NodeId out = nl.node("out");
  waveform::Waveform step;
  step.append(0.0, 0.0);
  step.append(1e-12, 1.0);
  nl.add_vsource_pwl(in, kGround, std::move(step));
  nl.add_resistor(in, out, 1e3);
  nl.add_capacitor(out, kGround, 1e-12);  // tau = 1 ns
  TransientOptions opts;
  opts.t_end = 5e-9;
  const auto r = transient_analysis(nl, {"out"}, opts);
  for (double t : {1e-9, 2e-9, 4e-9}) {
    const double expect = 1.0 - std::exp(-(t - 1e-12) / 1e-9);
    EXPECT_NEAR(r.wave("out").value_at(t), expect, 2e-4) << "t=" << t;
  }
}

TEST(LinearTransient, RcDividerFinalValue) {
  // Two capacitors in series across a source: steady state splits by C.
  Netlist nl;
  const NodeId in = nl.node("in");
  const NodeId mid = nl.node("mid");
  waveform::Waveform step;
  step.append(0.0, 0.0);
  step.append(1e-12, 1.0);
  nl.add_vsource_pwl(in, kGround, std::move(step));
  nl.add_resistor(in, mid, 1e3);
  nl.add_capacitor(mid, kGround, 1e-12);
  nl.add_resistor(mid, kGround, 9e3);  // final value 0.9
  TransientOptions opts;
  opts.t_end = 10e-9;
  const auto r = transient_analysis(nl, {"mid"}, opts);
  EXPECT_NEAR(r.wave("mid").value_at(10e-9), 0.9, 1e-3);
}

TEST(LinearTransient, CoupledRcTwoPoles) {
  // R-C ladder: V -> R1 -> a (C1) -> R2 -> b (C2). Validated against the
  // closed-form solved by our own ode library in the integration tests;
  // here just check monotone rise and settling.
  Netlist nl;
  const NodeId in = nl.node("in");
  const NodeId a = nl.node("a");
  const NodeId b = nl.node("b");
  waveform::Waveform step;
  step.append(0.0, 0.0);
  step.append(1e-12, 1.0);
  nl.add_vsource_pwl(in, kGround, std::move(step));
  nl.add_resistor(in, a, 1e3);
  nl.add_capacitor(a, kGround, 1e-12);
  nl.add_resistor(a, b, 2e3);
  nl.add_capacitor(b, kGround, 0.5e-12);
  TransientOptions opts;
  opts.t_end = 20e-9;
  const auto r = transient_analysis(nl, {"a", "b"}, opts);
  EXPECT_NEAR(r.wave("a").value_at(20e-9), 1.0, 1e-3);
  EXPECT_NEAR(r.wave("b").value_at(20e-9), 1.0, 1e-3);
  // b lags a everywhere.
  for (double t : {0.5e-9, 1e-9, 2e-9, 4e-9}) {
    EXPECT_LE(r.wave("b").value_at(t), r.wave("a").value_at(t) + 1e-9);
  }
}

TEST(LinearTransient, BreakpointsAreExact) {
  // A PWL pulse: the simulator must land exactly on the corners, so the
  // recorded waveform reproduces the source at its breakpoints.
  Netlist nl;
  const NodeId in = nl.node("in");
  waveform::Waveform pulse;
  pulse.append(0.0, 0.0);
  pulse.append(1e-9, 0.0);
  pulse.append(1.2e-9, 1.0);
  pulse.append(3e-9, 1.0);
  pulse.append(3.2e-9, 0.0);
  nl.add_vsource_pwl(in, kGround, std::move(pulse));
  nl.add_resistor(in, kGround, 1e3);
  TransientOptions opts;
  opts.t_end = 4e-9;
  const auto r = transient_analysis(nl, {"in"}, opts);
  EXPECT_NEAR(r.wave("in").value_at(1.2e-9), 1.0, 1e-9);
  EXPECT_NEAR(r.wave("in").value_at(3.0e-9), 1.0, 1e-9);
  EXPECT_NEAR(r.wave("in").value_at(3.2e-9), 0.0, 1e-9);
}

TEST(LinearTransient, EnergyNeverCreatedByPassiveNetwork) {
  // Discharge of a precharged cap through a resistor: voltage must decay
  // monotonically (no trapezoidal ringing after the initial point).
  Netlist nl;
  const NodeId a = nl.node("a");
  const NodeId drv = nl.node("drv");
  waveform::Waveform w;
  w.append(0.0, 1.0);
  w.append(0.1e-9, 0.0);
  nl.add_vsource_pwl(drv, kGround, std::move(w));
  nl.add_resistor(drv, a, 1e3);
  nl.add_capacitor(a, kGround, 1e-12);
  TransientOptions opts;
  opts.t_end = 6e-9;
  const auto r = transient_analysis(nl, {"a"}, opts);
  const auto& samples = r.wave("a").samples();
  for (std::size_t i = 1; i < samples.size(); ++i) {
    if (samples[i].t < 0.1e-9) continue;
    EXPECT_LE(samples[i].v, samples[i - 1].v + 1e-6);
  }
}

}  // namespace
}  // namespace charlie::spice
