#include "spice/dcop.hpp"

#include <gtest/gtest.h>

#include "spice/cells.hpp"
#include "spice/netlist.hpp"

namespace charlie::spice {
namespace {

TEST(DcOp, InverterTransferEndpoints) {
  const Technology tech = Technology::freepdk15_like();
  for (double vin : {0.0, tech.vdd}) {
    Netlist nl;
    const auto inv = build_inverter(nl, tech);
    nl.add_vsource(inv.vdd, kGround, tech.vdd);
    nl.add_vsource(inv.in, kGround, vin);
    const auto x = dc_operating_point(nl);
    const double vout = x[inv.out - 1];
    if (vin == 0.0) {
      EXPECT_NEAR(vout, tech.vdd, 1e-3);
    } else {
      EXPECT_NEAR(vout, 0.0, 1e-3);
    }
  }
}

TEST(DcOp, InverterVtcIsMonotoneDecreasing) {
  const Technology tech = Technology::freepdk15_like();
  double prev_out = tech.vdd + 1.0;
  for (int i = 0; i <= 16; ++i) {
    const double vin = tech.vdd * i / 16.0;
    Netlist nl;
    const auto inv = build_inverter(nl, tech);
    nl.add_vsource(inv.vdd, kGround, tech.vdd);
    nl.add_vsource(inv.in, kGround, vin);
    const auto x = dc_operating_point(nl);
    const double vout = x[inv.out - 1];
    EXPECT_LE(vout, prev_out + 1e-6) << "VTC not monotone at vin=" << vin;
    prev_out = vout;
  }
}

TEST(DcOp, NorTruthTableDc) {
  const Technology tech = Technology::freepdk15_like();
  const struct {
    double a;
    double b;
    double out_expected;
  } rows[] = {
      {0.0, 0.0, tech.vdd},
      {0.0, tech.vdd, 0.0},
      {tech.vdd, 0.0, 0.0},
      {tech.vdd, tech.vdd, 0.0},
  };
  for (const auto& row : rows) {
    Netlist nl;
    const auto nor = build_nor2(nl, tech);
    nl.add_vsource(nor.vdd, kGround, tech.vdd);
    nl.add_vsource(nor.a, kGround, row.a);
    nl.add_vsource(nor.b, kGround, row.b);
    const auto x = dc_operating_point(nl);
    EXPECT_NEAR(x[nor.o - 1], row.out_expected, 5e-3)
        << "a=" << row.a << " b=" << row.b;
  }
}

TEST(DcOp, NandTruthTableDc) {
  const Technology tech = Technology::freepdk15_like();
  const struct {
    double a;
    double b;
    double out_expected;
  } rows[] = {
      {0.0, 0.0, tech.vdd},
      {0.0, tech.vdd, tech.vdd},
      {tech.vdd, 0.0, tech.vdd},
      {tech.vdd, tech.vdd, 0.0},
  };
  for (const auto& row : rows) {
    Netlist nl;
    const auto nand = build_nand2(nl, tech);
    nl.add_vsource(nand.vdd, kGround, tech.vdd);
    nl.add_vsource(nand.a, kGround, row.a);
    nl.add_vsource(nand.b, kGround, row.b);
    const auto x = dc_operating_point(nl);
    EXPECT_NEAR(x[nand.o - 1], row.out_expected, 5e-3)
        << "a=" << row.a << " b=" << row.b;
  }
}

TEST(DcOp, NorInternalNodeFollowsConduction) {
  const Technology tech = Technology::freepdk15_like();
  // A=0: T1 conducts, N pulled to VDD regardless of B.
  {
    Netlist nl;
    const auto nor = build_nor2(nl, tech);
    nl.add_vsource(nor.vdd, kGround, tech.vdd);
    nl.add_vsource(nor.a, kGround, 0.0);
    nl.add_vsource(nor.b, kGround, tech.vdd);
    const auto x = dc_operating_point(nl);
    EXPECT_NEAR(x[nor.n - 1], tech.vdd, 5e-3);
  }
  // A=1, B=0: T2 conducts and drains N toward O -- but as a pMOS pass
  // transistor it cuts off once V_N falls to |vt_p| above its gate (0 V),
  // so N settles near |vt_p|, not at ground. (The paper's ideal-switch
  // abstraction replaces T2 by a resistor and would drain N fully; this
  // is one of the real-transistor effects the abstraction smooths over.)
  {
    Netlist nl;
    const auto nor = build_nor2(nl, tech);
    nl.add_vsource(nor.vdd, kGround, tech.vdd);
    nl.add_vsource(nor.a, kGround, tech.vdd);
    nl.add_vsource(nor.b, kGround, 0.0);
    const auto x = dc_operating_point(nl);
    EXPECT_LT(x[nor.o - 1], 0.01);                     // output hard low
    EXPECT_NEAR(x[nor.n - 1], tech.pmos.vt, 30e-3);    // N parked at |vt_p|
  }
}

}  // namespace
}  // namespace charlie::spice
