#include "spice/transient.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "spice/cells.hpp"
#include "spice/netlist.hpp"
#include "waveform/edges.hpp"
#include "util/error.hpp"
#include "waveform/digitize.hpp"

namespace charlie::spice {
namespace {

TEST(Transient, ToleranceControlsAccuracy) {
  auto run_with = [](double v_abstol) {
    Netlist nl;
    const NodeId in = nl.node("in");
    const NodeId out = nl.node("out");
    waveform::Waveform step;
    step.append(0.0, 0.0);
    step.append(1e-12, 1.0);
    nl.add_vsource_pwl(in, kGround, std::move(step));
    nl.add_resistor(in, out, 1e3);
    nl.add_capacitor(out, kGround, 1e-12);
    TransientOptions opts;
    opts.t_end = 3e-9;
    opts.v_abstol = v_abstol;
    opts.v_reltol = v_abstol * 10;
    const auto r = transient_analysis(nl, {"out"}, opts);
    const double expect = 1.0 - std::exp(-(1.5e-9 - 1e-12) / 1e-9);
    return std::fabs(r.wave("out").value_at(1.5e-9) - expect);
  };
  EXPECT_LT(run_with(1e-6), run_with(1e-3) + 1e-12);
  EXPECT_LT(run_with(1e-6), 3e-4);
}

TEST(Transient, TighterToleranceTakesMoreSteps) {
  auto steps_with = [](double v_abstol) {
    Netlist nl;
    const NodeId in = nl.node("in");
    const NodeId out = nl.node("out");
    waveform::Waveform step;
    step.append(0.0, 0.0);
    step.append(1e-12, 1.0);
    nl.add_vsource_pwl(in, kGround, std::move(step));
    nl.add_resistor(in, out, 1e3);
    nl.add_capacitor(out, kGround, 1e-12);
    TransientOptions opts;
    opts.t_end = 3e-9;
    opts.v_abstol = v_abstol;
    opts.v_reltol = v_abstol * 10;
    return transient_analysis(nl, {"out"}, opts).n_accepted;
  };
  EXPECT_GT(steps_with(1e-6), steps_with(1e-3));
}

TEST(Transient, InverterPropagatesPulse) {
  const Technology tech = Technology::freepdk15_like();
  Netlist nl;
  const auto inv = build_inverter(nl, tech);
  nl.add_vsource(inv.vdd, kGround, tech.vdd);
  waveform::EdgeParams edges;
  edges.v_high = tech.vdd;
  edges.rise_time = tech.input_rise_time;
  const waveform::DigitalTrace pulse(false, {300e-12, 800e-12});
  nl.add_vsource_pwl(inv.in, kGround,
                     waveform::slew_limited_waveform(pulse, edges, 0.0, 1.5e-9));
  TransientOptions opts;
  opts.t_end = 1.5e-9;
  const auto r = transient_analysis(nl, {"out"}, opts);
  const auto out = waveform::digitize(r.wave("out"), tech.vth());
  // The inverter output starts high, falls after the input rise, recovers.
  EXPECT_TRUE(out.initial_value());
  ASSERT_EQ(out.n_transitions(), 2u);
  EXPECT_FALSE(out.is_rising(0));
  EXPECT_GT(out.transitions()[0], 300e-12);
  EXPECT_LT(out.transitions()[0], 360e-12);  // delay well under 60 ps
  EXPECT_GT(out.transitions()[1], 800e-12);
}

TEST(Transient, InverterChainDelaysAccumulate) {
  const Technology tech = Technology::freepdk15_like();
  Netlist nl;
  const NodeId vdd = nl.node("vdd");
  nl.add_vsource(vdd, kGround, tech.vdd);
  const auto inv1 = build_inverter(nl, tech, "i1_");
  const auto inv2 = build_inverter(nl, tech, "i2_");
  // Chain them: i1_out drives i2_in through a wire (same node cannot be
  // two names, so couple with a tiny resistor).
  nl.add_resistor(inv1.out, inv2.in, 1.0);
  waveform::EdgeParams edges;
  edges.v_high = tech.vdd;
  edges.rise_time = tech.input_rise_time;
  const waveform::DigitalTrace step_trace(false, {300e-12});
  nl.add_vsource_pwl(inv1.in, kGround, waveform::slew_limited_waveform(
                                           step_trace, edges, 0.0, 2e-9));
  TransientOptions opts;
  opts.t_end = 2e-9;
  const auto r = transient_analysis(nl, {"i1_out", "i2_out"}, opts);
  const auto out1 = waveform::digitize(r.wave("i1_out"), tech.vth());
  const auto out2 = waveform::digitize(r.wave("i2_out"), tech.vth());
  ASSERT_EQ(out1.n_transitions(), 1u);
  ASSERT_EQ(out2.n_transitions(), 1u);
  EXPECT_GT(out2.transitions()[0], out1.transitions()[0]);
}

TEST(Transient, RecordsRequestedNodesOnly) {
  Netlist nl;
  const NodeId a = nl.node("a");
  nl.add_vsource(a, kGround, 1.0);
  nl.add_resistor(a, kGround, 1e3);
  TransientOptions opts;
  opts.t_end = 1e-9;
  const auto r = transient_analysis(nl, {"a"}, opts);
  EXPECT_NO_THROW(r.wave("a"));
  EXPECT_THROW(r.wave("nonexistent"), ConfigError);
}

TEST(Transient, RejectsEmptySpan) {
  Netlist nl;
  nl.add_vsource(nl.node("a"), kGround, 1.0);
  TransientOptions opts;
  opts.t_end = 0.0;
  EXPECT_THROW(transient_analysis(nl, {}, opts), AssertionError);
}

}  // namespace
}  // namespace charlie::spice
