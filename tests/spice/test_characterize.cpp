// MIS characterization of the analog NOR2: the substrate must reproduce
// the paper's Fig 2 phenomenology (Section II).
#include "spice/characterize.hpp"

#include <gtest/gtest.h>

namespace charlie::spice {
namespace {

class CharacterizeFixture : public ::testing::Test {
 protected:
  static const SubstrateCharacteristics& chars() {
    static const SubstrateCharacteristics c =
        measure_characteristics(Technology::freepdk15_like());
    return c;
  }
};

TEST_F(CharacterizeFixture, DelaysInPaperRegime) {
  // Fig 2 works in tens of picoseconds.
  for (double d : {chars().fall_minus_inf, chars().fall_zero,
                   chars().fall_plus_inf, chars().rise_minus_inf,
                   chars().rise_zero, chars().rise_plus_inf}) {
    EXPECT_GT(d, 10e-12);
    EXPECT_LT(d, 120e-12);
  }
}

TEST_F(CharacterizeFixture, FallingMisSpeedUp) {
  // Paper Fig 2b: simultaneous rising inputs drain the output through both
  // nMOS in parallel => minimum delay at Delta = 0, ~-28 % there.
  EXPECT_LT(chars().fall_zero, chars().fall_minus_inf);
  EXPECT_LT(chars().fall_zero, chars().fall_plus_inf);
  const double speedup = chars().fall_zero / chars().fall_minus_inf - 1.0;
  EXPECT_LT(speedup, -0.15);  // substantial
  EXPECT_GT(speedup, -0.60);  // but not more than the 2x theoretical limit
}

TEST_F(CharacterizeFixture, FallingSisAsymmetryFromT2) {
  // Paper Section II: A-first (Delta = +inf) is slower because T2 connects
  // C_N to the output while it drains.
  EXPECT_GT(chars().fall_plus_inf, chars().fall_minus_inf);
}

TEST_F(CharacterizeFixture, RisingMisSlowDown) {
  // Paper Fig 2d: near-simultaneous falling inputs are slower than either
  // SIS case (coupling into C_N).
  EXPECT_GT(chars().rise_zero, chars().rise_minus_inf);
  EXPECT_GT(chars().rise_zero, chars().rise_plus_inf);
}

TEST_F(CharacterizeFixture, RisingHistoryAsymmetry) {
  // Early A-fall precharges N through T1 => B-last (Delta = +inf) is
  // faster than A-last (Delta = -inf).
  EXPECT_LT(chars().rise_plus_inf, chars().rise_minus_inf);
}

TEST(Characterize, FallingDelayCurveIsContinuous) {
  const Technology tech = Technology::freepdk15_like();
  double prev = measure_falling_delay(tech, -50e-12).delay;
  for (double delta = -40e-12; delta <= 50e-12; delta += 10e-12) {
    const double d = measure_falling_delay(tech, delta).delay;
    EXPECT_LT(std::abs(d - prev), 15e-12)
        << "jump at delta=" << delta;  // no discontinuities
    prev = d;
  }
}

TEST(Characterize, RisingHistoryConditioningMatters) {
  // For moderate negative Delta the initial V_N matters: drained vs
  // precharged histories must give different delays at Delta ~ -10 ps.
  const Technology tech = Technology::freepdk15_like();
  const double drained =
      measure_rising_delay(tech, -10e-12, NorHistory::kInternalDrained).delay;
  const double precharged =
      measure_rising_delay(tech, -10e-12, NorHistory::kInternalPrecharged)
          .delay;
  EXPECT_NE(drained, precharged);
  // Precharged N helps the pull-up: faster.
  EXPECT_LT(precharged, drained + 1e-12);
}

TEST(Characterize, MeasurementBookkeeping) {
  const Technology tech = Technology::freepdk15_like();
  const auto m = measure_falling_delay(tech, 30e-12);
  EXPECT_DOUBLE_EQ(m.t_second - m.t_first, 30e-12);
  EXPECT_GT(m.t_out, m.t_first);
  EXPECT_NEAR(m.delay, m.t_out - m.t_first, 1e-18);
  const auto r = measure_rising_delay(tech, 30e-12,
                                      NorHistory::kInternalDrained);
  EXPECT_NEAR(r.delay, r.t_out - r.t_second, 1e-18);
}

TEST(Characterize, CouplingHeavyTechAmplifiesBump) {
  const auto base = measure_characteristics(Technology::freepdk15_like());
  const auto heavy = measure_characteristics(Technology::coupling_heavy());
  const double bump_base = base.rise_zero / base.rise_plus_inf - 1.0;
  const double bump_heavy = heavy.rise_zero / heavy.rise_plus_inf - 1.0;
  EXPECT_GT(bump_heavy, bump_base);
}

}  // namespace
}  // namespace charlie::spice
