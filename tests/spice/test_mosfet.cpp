#include "spice/mosfet.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "spice/dcop.hpp"
#include "spice/netlist.hpp"
#include "util/error.hpp"

namespace charlie::spice {
namespace {

MosfetParams test_params() {
  MosfetParams p;
  p.vt = 0.25;
  p.k = 100e-6;
  p.lambda = 0.05;
  return p;
}

TEST(MosfetModel, CutoffHasZeroCurrent) {
  const auto op = nmos_current(test_params(), 0.1, 0.5);
  EXPECT_DOUBLE_EQ(op.id, 0.0);
  EXPECT_DOUBLE_EQ(op.gm, 0.0);
}

TEST(MosfetModel, TriodeAndSaturationValues) {
  const MosfetParams p = test_params();
  // Triode: vgs=1, vds=0.2 < vov=0.75.
  const auto triode = nmos_current(p, 1.0, 0.2);
  const double triode_expected =
      p.k * (0.75 * 0.2 - 0.5 * 0.04) * (1.0 + p.lambda * 0.2);
  EXPECT_NEAR(triode.id, triode_expected, 1e-12);
  // Saturation: vds = 1.0 > vov.
  const auto sat = nmos_current(p, 1.0, 1.0);
  const double sat_expected = 0.5 * p.k * 0.75 * 0.75 * (1.0 + p.lambda);
  EXPECT_NEAR(sat.id, sat_expected, 1e-12);
}

TEST(MosfetModel, ContinuousAtRegionBoundary) {
  const MosfetParams p = test_params();
  const double vov = 1.0 - p.vt;
  const auto below = nmos_current(p, 1.0, vov - 1e-9);
  const auto above = nmos_current(p, 1.0, vov + 1e-9);
  EXPECT_NEAR(below.id, above.id, 1e-12);
  EXPECT_NEAR(below.gm, above.gm, 1e-9);
}

TEST(MosfetModel, CurrentMonotoneInVgs) {
  const MosfetParams p = test_params();
  double prev = -1.0;
  for (double vgs = 0.0; vgs <= 1.2; vgs += 0.05) {
    const double id = nmos_current(p, vgs, 0.6).id;
    EXPECT_GE(id, prev - 1e-15);
    prev = id;
  }
}

TEST(MosfetModel, DerivativesMatchFiniteDifference) {
  const MosfetParams p = test_params();
  for (double vgs : {0.5, 0.8, 1.1}) {
    for (double vds : {0.1, 0.4, 0.9}) {
      const double h = 1e-7;
      const auto op = nmos_current(p, vgs, vds);
      const double gm_fd =
          (nmos_current(p, vgs + h, vds).id - nmos_current(p, vgs - h, vds).id) /
          (2 * h);
      const double gds_fd =
          (nmos_current(p, vgs, vds + h).id - nmos_current(p, vgs, vds - h).id) /
          (2 * h);
      EXPECT_NEAR(op.gm, gm_fd, 1e-6 * std::max(1e-6, gm_fd));
      EXPECT_NEAR(op.gds, gds_fd, 1e-6 * std::max(1e-6, gds_fd));
    }
  }
}

TEST(MosfetModel, RejectsNegativeVds) {
  EXPECT_THROW(nmos_current(test_params(), 1.0, -0.1), AssertionError);
}

TEST(MosfetModel, ParamValidation) {
  MosfetParams p = test_params();
  p.vt = -0.1;
  EXPECT_THROW(p.validate(), AssertionError);
  p = test_params();
  p.k = 0.0;
  EXPECT_THROW(p.validate(), AssertionError);
}

// Element-level: an NMOS with a drain resistor biased as a common-source
// stage; Newton must converge to the analytic operating point.
TEST(MosfetElement, CommonSourceOperatingPoint) {
  const MosfetParams p = test_params();
  Netlist nl;
  const NodeId vdd = nl.node("vdd");
  const NodeId g = nl.node("g");
  const NodeId d = nl.node("d");
  nl.add_vsource(vdd, kGround, 1.0);
  nl.add_vsource(g, kGround, 0.6);
  nl.add_resistor(vdd, d, 10e3);
  nl.add_nmos(d, g, kGround, p);
  const auto x = dc_operating_point(nl);
  const double vd = x[d - 1];
  // Verify KCL at the drain against the device equation.
  const double id = nmos_current(p, 0.6, vd).id;
  EXPECT_NEAR((1.0 - vd) / 10e3, id, 1e-9);
  EXPECT_GT(vd, 0.0);
  EXPECT_LT(vd, 1.0);
}

TEST(MosfetElement, PmosPullupMirrorsSymmetrically) {
  // PMOS source at VDD, gate at 0 (fully on), drain loaded to ground: the
  // operating point mirrors the equivalent NMOS pulldown.
  const MosfetParams p = test_params();
  Netlist nl_p;
  {
    const NodeId vdd = nl_p.node("vdd");
    const NodeId d = nl_p.node("d");
    nl_p.add_vsource(vdd, kGround, 1.0);
    nl_p.add_pmos(d, kGround, vdd, p);  // gate at ground
    nl_p.add_resistor(d, kGround, 10e3);
  }
  const auto xp = dc_operating_point(nl_p);
  Netlist nl_n;
  {
    const NodeId vdd = nl_n.node("vdd");
    const NodeId d = nl_n.node("d");
    nl_n.add_vsource(vdd, kGround, 1.0);
    nl_n.add_nmos(d, vdd, kGround, p);  // gate at VDD
    nl_n.add_resistor(vdd, d, 10e3);
  }
  const auto xn = dc_operating_point(nl_n);
  // v_drain(PMOS pull-up) = VDD - v_drain(NMOS pull-down); node "d" is the
  // second declared node (index 2), so its unknown is x[1].
  EXPECT_NEAR(xp[1], 1.0 - xn[1], 1e-6);
}

TEST(MosfetElement, ReversedChannelConducts) {
  // Swap source/drain roles: device sees vds < 0 internally and must still
  // conduct symmetrically (pass-gate usage).
  const MosfetParams p = test_params();
  Netlist nl;
  const NodeId vin = nl.node("vin");
  const NodeId out = nl.node("out");
  const NodeId g = nl.node("g");
  nl.add_vsource(g, kGround, 1.0);
  nl.add_vsource(vin, kGround, 0.2);
  // NMOS declared with drain at ground, source at out: current must flow
  // "backwards" through the channel to pull out toward vin.
  nl.add_nmos(kGround, g, out, p);
  nl.add_resistor(vin, out, 1e3);
  const auto x = dc_operating_point(nl);
  const double vout = x[out - 1];
  EXPECT_GT(vout, 0.0);
  EXPECT_LT(vout, 0.2);  // pulled down toward ground through the channel
}

}  // namespace
}  // namespace charlie::spice
