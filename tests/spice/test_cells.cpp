#include "spice/cells.hpp"

#include <gtest/gtest.h>

#include "spice/characterize.hpp"
#include "util/error.hpp"
#include "waveform/digitize.hpp"

namespace charlie::spice {
namespace {

TEST(Cells, Nor2NodeNaming) {
  Netlist nl;
  const Technology tech = Technology::freepdk15_like();
  const auto nodes = build_nor2(nl, tech, "g1_");
  EXPECT_EQ(nl.node_name(nodes.a), "g1_a");
  EXPECT_EQ(nl.node_name(nodes.o), "g1_o");
  EXPECT_TRUE(nl.has_node("g1_n"));
  EXPECT_TRUE(nl.has_node("vdd"));
}

TEST(Cells, Nor2FunctionalSimulation) {
  // Drive all four input states in sequence and check the digitized output
  // follows NOR.
  const Technology tech = Technology::freepdk15_like();
  // a: 0 0 1 1, b: 0 1 0 1, each phase 500 ps.
  const waveform::DigitalTrace a(false, {1000e-12});
  const waveform::DigitalTrace b(false, {500e-12, 1000e-12, 1500e-12});
  const auto sim = run_nor2(tech, a, b, 2200e-12, TransientOptions{
                                                      .t_end = 0.0});
  const auto out = waveform::digitize(sim.vo, tech.vth());
  // Phases: (0,0)->1, (0,1)->0, (1,0)->0, (1,1)->0. Output: high then low
  // (with a possible glitch near 1000 ps where b falls as a rises).
  EXPECT_TRUE(out.initial_value());
  ASSERT_GE(out.n_transitions(), 1u);
  EXPECT_FALSE(out.is_rising(0));
  EXPECT_NEAR(out.transitions()[0], 500e-12, 60e-12);
  EXPECT_FALSE(out.final_value());
}

TEST(Cells, Nand2FunctionalSimulation) {
  const Technology tech = Technology::freepdk15_like();
  Netlist nl;
  const auto nand = build_nand2(nl, tech);
  nl.add_vsource(nand.vdd, kGround, tech.vdd);
  waveform::EdgeParams edges;
  edges.v_high = tech.vdd;
  edges.rise_time = tech.input_rise_time;
  // a rises at 300 ps while b is high: output must fall.
  const waveform::DigitalTrace a(false, {300e-12});
  const waveform::DigitalTrace b(true, {});
  nl.add_vsource_pwl(nand.a, kGround,
                     waveform::slew_limited_waveform(a, edges, 0.0, 1e-9));
  nl.add_vsource_pwl(nand.b, kGround,
                     waveform::slew_limited_waveform(b, edges, 0.0, 1e-9));
  TransientOptions opts;
  opts.t_end = 1e-9;
  const auto r = transient_analysis(nl, {"o"}, opts);
  const auto out = waveform::digitize(r.wave("o"), tech.vth());
  EXPECT_TRUE(out.initial_value());
  ASSERT_EQ(out.n_transitions(), 1u);
  EXPECT_GT(out.transitions()[0], 300e-12);
}

TEST(Cells, InverterLoadAffectsDelay) {
  Technology light = Technology::freepdk15_like();
  Technology heavy = light;
  heavy.c_output = 3.0 * light.c_output;
  auto delay_of = [](const Technology& tech) {
    Netlist nl;
    const auto inv = build_inverter(nl, tech);
    nl.add_vsource(inv.vdd, kGround, tech.vdd);
    waveform::EdgeParams edges;
    edges.v_high = tech.vdd;
    edges.rise_time = tech.input_rise_time;
    const waveform::DigitalTrace step_trace(false, {300e-12});
    nl.add_vsource_pwl(inv.in, kGround, waveform::slew_limited_waveform(
                                            step_trace, edges, 0.0, 1.5e-9));
    TransientOptions opts;
    opts.t_end = 1.5e-9;
    const auto r = transient_analysis(nl, {"out"}, opts);
    const auto out = waveform::digitize(r.wave("out"), tech.vth());
    return out.transitions().at(0) - 300e-12;
  };
  EXPECT_GT(delay_of(heavy), 1.8 * delay_of(light));
}

TEST(Cells, TechnologyValidation) {
  Technology t = Technology::freepdk15_like();
  EXPECT_NO_THROW(t.validate());
  t.c_output = 0.0;
  EXPECT_THROW(t.validate(), charlie::AssertionError);
  t = Technology::coupling_heavy();
  EXPECT_NO_THROW(t.validate());
  EXPECT_GT(t.c_gd, Technology::freepdk15_like().c_gd);
}

}  // namespace
}  // namespace charlie::spice
