#include "spice/lu.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace charlie::spice {
namespace {

TEST(DenseLu, Solves2x2) {
  DenseMatrix a(2);
  a.at(0, 0) = 2.0;
  a.at(0, 1) = 1.0;
  a.at(1, 0) = 1.0;
  a.at(1, 1) = 3.0;
  const auto x = lu_solve(a, {5.0, 10.0});
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(DenseLu, RequiresPivoting) {
  // Zero on the leading diagonal forces a row swap.
  DenseMatrix a(2);
  a.at(0, 0) = 0.0;
  a.at(0, 1) = 1.0;
  a.at(1, 0) = 1.0;
  a.at(1, 1) = 0.0;
  const auto x = lu_solve(a, {2.0, 3.0});
  EXPECT_NEAR(x[0], 3.0, 1e-14);
  EXPECT_NEAR(x[1], 2.0, 1e-14);
}

TEST(DenseLu, LargerSystemRoundTrip) {
  const std::size_t n = 8;
  DenseMatrix a(n);
  // Diagonally dominant random-ish matrix (deterministic fill).
  std::vector<double> x_true(n);
  for (std::size_t i = 0; i < n; ++i) {
    x_true[i] = static_cast<double>(i) - 3.5;
    for (std::size_t j = 0; j < n; ++j) {
      a.at(i, j) = (i == j) ? 10.0 + static_cast<double>(i)
                            : 1.0 / (1.0 + static_cast<double>(i + j));
    }
  }
  std::vector<double> b(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) b[i] += a.at(i, j) * x_true[j];
  }
  DenseMatrix a_copy = a;
  const auto x = lu_solve(a_copy, b);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(x[i], x_true[i], 1e-10);
  }
}

TEST(DenseLu, SingularMatrixThrows) {
  DenseMatrix a(2);
  a.at(0, 0) = 1.0;
  a.at(0, 1) = 2.0;
  a.at(1, 0) = 2.0;
  a.at(1, 1) = 4.0;
  EXPECT_THROW(lu_solve(a, {1.0, 1.0}), ConvergenceError);
}

TEST(DenseMatrix, AddAccumulates) {
  DenseMatrix a(2);
  a.add(0, 0, 1.5);
  a.add(0, 0, 2.5);
  EXPECT_DOUBLE_EQ(a.at(0, 0), 4.0);
  a.clear();
  EXPECT_DOUBLE_EQ(a.at(0, 0), 0.0);
}

TEST(DenseMatrix, BoundsChecked) {
  DenseMatrix a(2);
  EXPECT_THROW(a.at(2, 0), AssertionError);
  EXPECT_THROW(a.at(0, 5), AssertionError);
}

}  // namespace
}  // namespace charlie::spice
