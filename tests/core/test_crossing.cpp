#include "core/crossing.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/error.hpp"

namespace charlie::core {
namespace {

constexpr double kLn2 = 0.6931471805599453;

TEST(Crossing, SingleExponentialDecayExactTime) {
  // (0,0) -> (0,1): V_O = VDD e^{-t/(R4 CO)}; crossing of VDD/2 at
  // ln2 R4 CO (paper eq (9) without delta_min).
  const auto p = NorParams::paper_table1();
  auto traj = NorTrajectory::from_steady_state(p, 0.0, Mode::kS00);
  traj.set_inputs(0.0, false, true);
  CrossingQuery q;
  q.threshold = p.vth();
  q.t_start = 0.0;
  q.t_end = 1e-9;
  q.direction = CrossDirection::kFalling;
  const auto t = first_vo_crossing(traj, q);
  ASSERT_TRUE(t.has_value());
  EXPECT_NEAR(*t, kLn2 * p.r4 * p.co, 1e-16);
}

TEST(Crossing, ParallelDischargeExactTime) {
  // (0,0) -> (1,1): both nMOS conduct; crossing at ln2 CO (R3||R4)
  // (paper eq (8)).
  const auto p = NorParams::paper_table1();
  auto traj = NorTrajectory::from_steady_state(p, 0.0, Mode::kS00);
  traj.set_inputs(0.0, true, true);
  CrossingQuery q;
  q.threshold = p.vth();
  q.t_start = 0.0;
  q.t_end = 1e-9;
  const auto t = first_vo_crossing(traj, q);
  ASSERT_TRUE(t.has_value());
  const double rp = p.r3 * p.r4 / (p.r3 + p.r4);
  EXPECT_NEAR(*t, kLn2 * p.co * rp, 1e-16);
}

TEST(Crossing, DirectionFilterSkipsWrongWay) {
  const auto p = NorParams::paper_table1();
  auto traj = NorTrajectory::from_steady_state(p, 0.0, Mode::kS00);
  traj.set_inputs(0.0, false, true);  // V_O falls
  CrossingQuery q;
  q.threshold = p.vth();
  q.t_start = 0.0;
  q.t_end = 1e-9;
  q.direction = CrossDirection::kRising;  // wrong direction
  EXPECT_FALSE(first_vo_crossing(traj, q).has_value());
}

TEST(Crossing, NoCrossingWhenAsymptoteOnSameSide) {
  // Steady (0,0) stays at VDD: never crosses VDD/2.
  const auto p = NorParams::paper_table1();
  const auto traj = NorTrajectory::from_steady_state(p, 0.0, Mode::kS00);
  CrossingQuery q;
  q.threshold = p.vth();
  q.t_start = 0.0;
  q.t_end = 1e-9;
  EXPECT_FALSE(first_vo_crossing(traj, q).has_value());
}

TEST(Crossing, FindsCrossingAcrossSegmentBoundary) {
  // Switch to (1,1) shortly before the would-be (0,1) crossing: the actual
  // crossing happens in the second segment, earlier than the (0,1) one.
  const auto p = NorParams::paper_table1();
  const double t01 = kLn2 * p.r4 * p.co;  // ~20.9 ps
  auto traj = NorTrajectory::from_steady_state(p, 0.0, Mode::kS00);
  traj.set_inputs(0.0, false, true);
  traj.set_inputs(0.7 * t01, true, true);
  CrossingQuery q;
  q.threshold = p.vth();
  q.t_start = 0.0;
  q.t_end = 1e-9;
  q.direction = CrossDirection::kFalling;
  const auto t = first_vo_crossing(traj, q);
  ASSERT_TRUE(t.has_value());
  EXPECT_GT(*t, 0.7 * t01);
  EXPECT_LT(*t, t01);
}

TEST(Crossing, WindowBoundsRespected) {
  const auto p = NorParams::paper_table1();
  auto traj = NorTrajectory::from_steady_state(p, 0.0, Mode::kS00);
  traj.set_inputs(0.0, false, true);
  const double t_true = kLn2 * p.r4 * p.co;
  CrossingQuery q;
  q.threshold = p.vth();
  q.t_start = 0.0;
  q.t_end = 0.5 * t_true;  // window ends before the crossing
  EXPECT_FALSE(first_vo_crossing(traj, q).has_value());
  // Start after the crossing: also nothing (V_O below threshold already).
  q.t_start = 2.0 * t_true;
  q.t_end = 1e-9;
  q.direction = CrossDirection::kFalling;
  EXPECT_FALSE(first_vo_crossing(traj, q).has_value());
}

TEST(Crossing, EmptyWindowThrows) {
  const auto p = NorParams::paper_table1();
  const auto traj = NorTrajectory::from_steady_state(p, 0.0, Mode::kS00);
  CrossingQuery q;
  q.t_start = 1.0;
  q.t_end = 1.0;
  EXPECT_THROW(first_vo_crossing(traj, q), AssertionError);
}

TEST(Crossing, ScanStepReasonable) {
  const auto p = NorParams::paper_table1();
  const auto traj = NorTrajectory::from_steady_state(p, 0.0, Mode::kS00);
  const double step = crossing_scan_step(traj, 1e-9);
  EXPECT_GT(step, 0.0);
  EXPECT_LE(step, 0.25e-9);
  EXPECT_GE(step, 1e-9 / 8192.0);
}

}  // namespace
}  // namespace charlie::core
