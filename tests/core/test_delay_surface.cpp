#include "core/delay_surface.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace charlie::core {
namespace {

class SurfaceFixture : public ::testing::Test {
 protected:
  static const DelaySurface& surface() {
    static const DelaySurface s =
        DelaySurface::build(NorParams::paper_table1(), 120e-12, 121);
    return s;
  }
  const NorDelayModel model_{NorParams::paper_table1()};
};

TEST_F(SurfaceFixture, MatchesModelAtGridPoints) {
  for (double delta : {-120e-12, -60e-12, 0.0, 60e-12, 120e-12}) {
    EXPECT_NEAR(surface().falling(delta), model_.falling_delay(delta).delay,
                1e-15)
        << delta;
    EXPECT_NEAR(surface().rising(delta),
                model_.rising_delay(delta, 0.0).delay, 1e-15)
        << delta;
  }
}

TEST_F(SurfaceFixture, InterpolationErrorSmallBetweenGridPoints) {
  for (double delta : {-37.3e-12, -11.1e-12, 5.7e-12, 43.9e-12}) {
    EXPECT_NEAR(surface().falling(delta), model_.falling_delay(delta).delay,
                0.05e-12)
        << delta;
    EXPECT_NEAR(surface().rising(delta),
                model_.rising_delay(delta, 0.0).delay, 0.05e-12)
        << delta;
  }
}

TEST_F(SurfaceFixture, ClampsToSisBeyondRange) {
  EXPECT_DOUBLE_EQ(surface().falling(-1.0), surface().falling_sis_b_first());
  EXPECT_DOUBLE_EQ(surface().falling(1.0), surface().falling_sis_a_first());
  EXPECT_DOUBLE_EQ(surface().rising(-1.0), surface().rising_sis_b_first());
  EXPECT_DOUBLE_EQ(surface().rising(1.0), surface().rising_sis_a_first());
}

TEST_F(SurfaceFixture, CharlieShapePreserved) {
  // The tabulated falling curve keeps its minimum at Delta = 0.
  EXPECT_LT(surface().falling(0.0), surface().falling(-60e-12));
  EXPECT_LT(surface().falling(0.0), surface().falling(60e-12));
}

TEST(DelaySurface, ValidatesArguments) {
  const auto p = NorParams::paper_table1();
  EXPECT_THROW(DelaySurface::build(p, -1.0, 10), AssertionError);
  EXPECT_THROW(DelaySurface::build(p, 1e-12, 1), AssertionError);
}

TEST(DelaySurface, CustomVn0Handled) {
  const auto p = NorParams::paper_table1();
  const auto s_gnd = DelaySurface::build(p, 100e-12, 41, 0.0);
  const auto s_vdd = DelaySurface::build(p, 100e-12, 41, p.vdd);
  // History only affects the rising curve for Delta < 0.
  EXPECT_NE(s_gnd.rising(-50e-12), s_vdd.rising(-50e-12));
  EXPECT_NEAR(s_gnd.falling(-50e-12), s_vdd.falling(-50e-12), 1e-15);
}

}  // namespace
}  // namespace charlie::core
