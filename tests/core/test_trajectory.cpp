#include "core/trajectory.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/error.hpp"

namespace charlie::core {
namespace {

TEST(Trajectory, RejectsInvalidParameters) {
  // mode_ode no longer validates on the hot path; the public trajectory
  // entry points must still reject bad parameters instead of emitting
  // inf/NaN waveforms.
  NorParams p = NorParams::paper_table1();
  p.co = 0.0;
  EXPECT_THROW(NorTrajectory::from_steady_state(p, 0.0, Mode::kS00),
               ConfigError);
  EXPECT_THROW(NorTrajectory(p, 0.0, Mode::kS10, ode::Vec2{0.0, 0.0}),
               ConfigError);
}

TEST(Trajectory, SteadyStateStaysPut) {
  const auto p = NorParams::paper_table1();
  const auto traj = NorTrajectory::from_steady_state(p, 0.0, Mode::kS00);
  EXPECT_NEAR(traj.vn_at(100e-12), p.vdd, 1e-9);
  EXPECT_NEAR(traj.vo_at(100e-12), p.vdd, 1e-9);
}

TEST(Trajectory, ContinuityAcrossModeSwitch) {
  const auto p = NorParams::paper_table1();
  auto traj = NorTrajectory::from_steady_state(p, 0.0, Mode::kS00);
  traj.set_inputs(0.0, true, false);
  traj.set_inputs(30e-12, true, true);
  // The trajectory slope is ~1e10 V/s, so the window must be small enough
  // that the physical change over 2*eps stays below the tolerance.
  const double eps = 1e-18;
  EXPECT_NEAR(traj.vo_at(30e-12 - eps), traj.vo_at(30e-12 + eps), 1e-6);
  EXPECT_NEAR(traj.vn_at(30e-12 - eps), traj.vn_at(30e-12 + eps), 1e-6);
}

TEST(Trajectory, Mode11FreezesVn) {
  const auto p = NorParams::paper_table1();
  auto traj = NorTrajectory::from_steady_state(p, 0.0, Mode::kS00);
  traj.set_inputs(10e-12, true, false);  // (1,0): V_N starts draining
  traj.set_inputs(40e-12, true, true);   // (1,1): V_N freezes
  const double vn_at_switch = traj.vn_at(40e-12);
  EXPECT_NEAR(traj.vn_at(100e-12), vn_at_switch, 1e-9);
  EXPECT_NEAR(traj.vn_at(400e-12), vn_at_switch, 1e-9);
  // While V_O keeps draining to ground.
  EXPECT_LT(traj.vo_at(400e-12), 0.01);
}

TEST(Trajectory, FallingOutputConvergesToGround) {
  const auto p = NorParams::paper_table1();
  auto traj = NorTrajectory::from_steady_state(p, 0.0, Mode::kS00);
  traj.set_inputs(0.0, false, true);  // (0,1)
  EXPECT_NEAR(traj.vo_at(1e-9), 0.0, 1e-6);
  EXPECT_NEAR(traj.vn_at(1e-9), p.vdd, 1e-6);
}

TEST(Trajectory, RisingOutputConvergesToVdd) {
  const auto p = NorParams::paper_table1();
  NorTrajectory traj(p, 0.0, Mode::kS00, ode::Vec2{0.0, 0.0});
  EXPECT_NEAR(traj.vo_at(2e-9), p.vdd, 1e-6);
  EXPECT_NEAR(traj.vn_at(2e-9), p.vdd, 1e-6);
}

TEST(Trajectory, NoOpInputChangeKeepsSegments) {
  const auto p = NorParams::paper_table1();
  auto traj = NorTrajectory::from_steady_state(p, 0.0, Mode::kS00);
  const auto n_before = traj.pieces().n_segments();
  traj.set_inputs(10e-12, false, false);  // same mode: no new segment
  EXPECT_EQ(traj.pieces().n_segments(), n_before);
}

TEST(Trajectory, VoSlopeSignMatchesTransition) {
  const auto p = NorParams::paper_table1();
  auto traj = NorTrajectory::from_steady_state(p, 0.0, Mode::kS00);
  traj.set_inputs(0.0, true, true);
  EXPECT_LT(traj.vo_slope_at(5e-12), 0.0);  // falling output
  NorTrajectory rising(p, 0.0, Mode::kS00, ode::Vec2{p.vdd, 0.0});
  EXPECT_GT(rising.vo_slope_at(5e-12), 0.0);
}

TEST(Trajectory, SampledWaveformPreservesCorners) {
  const auto p = NorParams::paper_table1();
  auto traj = NorTrajectory::from_steady_state(p, 0.0, Mode::kS00);
  traj.set_inputs(20e-12, false, true);
  traj.set_inputs(50e-12, true, true);
  const auto w = traj.sample_vo(0.0, 200e-12, 64);
  // The exact switch times must be sample points.
  bool found20 = false;
  bool found50 = false;
  for (const auto& s : w.samples()) {
    if (s.t == 20e-12) found20 = true;
    if (s.t == 50e-12) found50 = true;
  }
  EXPECT_TRUE(found20);
  EXPECT_TRUE(found50);
  // And sampling agrees with direct evaluation.
  EXPECT_NEAR(w.value_at(100e-12), traj.vo_at(100e-12), 1e-4);
}

TEST(Trajectory, Fig4InitialConditionsReproduced) {
  // Paper Fig 4: all four systems from V_N = V_O = VDD, except
  // (0,0) starting at GND and (1,1) with V_N = VDD/2.
  const auto p = NorParams::paper_table1();
  {
    NorTrajectory t(p, 0.0, Mode::kS11, ode::Vec2{p.vdd / 2, p.vdd});
    EXPECT_NEAR(t.vn_at(150e-12), p.vdd / 2, 1e-9);  // frozen
    EXPECT_LT(t.vo_at(150e-12), 0.05);               // drained fast (R3||R4)
  }
  {
    NorTrajectory t(p, 0.0, Mode::kS00, ode::Vec2{0.0, 0.0});
    EXPECT_GT(t.vn_at(150e-12), 0.5 * p.vdd);  // charging toward VDD
    EXPECT_GT(t.vn_at(150e-12), t.vo_at(150e-12));  // N leads O through R2
  }
}

}  // namespace
}  // namespace charlie::core
