#include "core/process_point.hpp"

#include <gtest/gtest.h>

#include "core/gate_mode_tables.hpp"
#include "core/gate_params.hpp"
#include "util/error.hpp"

namespace charlie::core {
namespace {

TEST(ProcessPoint, NominalScaleIsExactlyOne) {
  EXPECT_EQ(ProcessPoint::nominal().resistance_scale(0.8), 1.0);
  EXPECT_TRUE(ProcessPoint::nominal().is_nominal());
}

TEST(ProcessPoint, DeriveForNominalIsBitExactIdentity) {
  const GateParams nominal = GateParams::nor2_reference();
  const GateParams derived = nominal.derive_for(ProcessPoint::nominal());
  EXPECT_EQ(derived.r_series, nominal.r_series);
  EXPECT_EQ(derived.r_parallel, nominal.r_parallel);
  EXPECT_EQ(derived.c_int, nominal.c_int);
  EXPECT_EQ(derived.c_out, nominal.c_out);
  EXPECT_EQ(derived.vdd, nominal.vdd);
  EXPECT_EQ(derived.delta_min, nominal.delta_min);
}

TEST(ProcessPoint, ScaleRuleDirections) {
  // Weaker drive -> larger resistance; higher supply -> more overdrive ->
  // smaller resistance; higher device threshold -> less overdrive -> larger.
  ProcessPoint weak;
  weak.drive_scale = 0.8;
  EXPECT_GT(weak.resistance_scale(0.8), 1.0);

  ProcessPoint hot_supply;
  hot_supply.vdd_scale = 1.1;
  EXPECT_LT(hot_supply.resistance_scale(0.8), 1.0);

  ProcessPoint high_vt;
  high_vt.vth_shift = 0.05;
  EXPECT_GT(high_vt.resistance_scale(0.8), 1.0);
}

TEST(ProcessPoint, DriveScaleIsExactInverse) {
  ProcessPoint p;
  p.drive_scale = 2.0;
  EXPECT_DOUBLE_EQ(p.resistance_scale(0.8), 0.5);
}

TEST(ProcessPoint, ClosedOverdriveThrows) {
  ProcessPoint p;
  p.vth_shift = 0.6;  // > 0.7 * vdd for vdd = 0.8
  EXPECT_THROW(p.resistance_scale(0.8), ConfigError);
  ProcessPoint collapse;
  collapse.vdd_scale = 0.2;  // supply below the device threshold
  EXPECT_THROW(collapse.resistance_scale(0.8), ConfigError);
}

TEST(ProcessPoint, ValidateRejectsNonPositiveScales) {
  ProcessPoint p;
  p.vdd_scale = 0.0;
  EXPECT_THROW(p.validate(), ConfigError);
  p = ProcessPoint{};
  p.drive_scale = -1.0;
  EXPECT_THROW(p.validate(), ConfigError);
}

TEST(ProcessPoint, FingerprintDistinguishesPoints) {
  ProcessPoint a;
  ProcessPoint b;
  b.vth_shift = 1e-15;  // even a sub-ulp-of-printf-6 shift must show
  EXPECT_NE(a.fingerprint(), b.fingerprint());
  EXPECT_EQ(a.fingerprint(), ProcessPoint::nominal().fingerprint());
}

TEST(ProcessPoint, DeriveForScalesResistancesAndDelay) {
  const GateParams nominal = GateParams::nand3_reference();
  ProcessPoint p;
  p.drive_scale = 0.5;  // resistance doubles exactly
  const GateParams slow = nominal.derive_for(p);
  for (int i = 0; i < nominal.n_inputs(); ++i) {
    EXPECT_DOUBLE_EQ(slow.r_series[i], 2.0 * nominal.r_series[i]);
    EXPECT_DOUBLE_EQ(slow.r_parallel[i], 2.0 * nominal.r_parallel[i]);
  }
  EXPECT_DOUBLE_EQ(slow.delta_min, 2.0 * nominal.delta_min);
  EXPECT_EQ(slow.c_int, nominal.c_int);
  EXPECT_EQ(slow.c_out, nominal.c_out);
  EXPECT_EQ(slow.vdd, nominal.vdd);
}

TEST(GateModeTables, RederiveAtMatchesFreshConstruction) {
  const GateParams nominal = GateParams::nor2_reference();
  ProcessPoint p;
  p.vdd_scale = 1.05;
  p.vth_shift = 0.02;
  p.drive_scale = 0.9;

  GateModeTables inplace(nominal);
  inplace.rederive_at(nominal, p);
  const GateModeTables fresh(nominal.derive_for(p));

  ASSERT_EQ(inplace.n_states(), fresh.n_states());
  EXPECT_EQ(inplace.vth(), fresh.vth());
  EXPECT_EQ(inplace.horizon(), fresh.horizon());
  EXPECT_EQ(inplace.delta_min(), fresh.delta_min());
  for (GateState s = 0; s < fresh.n_states(); ++s) {
    const ModeTable& a = inplace.state_table(s);
    const ModeTable& b = fresh.state_table(s);
    EXPECT_EQ(a.scalar_valid, b.scalar_valid);
    EXPECT_EQ(a.d, b.d);
    EXPECT_EQ(a.l1, b.l1);
    EXPECT_EQ(a.l2, b.l2);
    EXPECT_EQ(a.p1c, b.p1c);
    EXPECT_EQ(a.p1d, b.p1d);
    EXPECT_EQ(a.steady.x, b.steady.x);
    EXPECT_EQ(a.steady.y, b.steady.y);
  }
}

TEST(GateModeTables, RederiveRejectsArityMismatch) {
  GateModeTables tables(GateParams::nor2_reference());
  EXPECT_THROW(tables.rederive(GateParams::nor3_reference()), ConfigError);
}

}  // namespace
}  // namespace charlie::core
