#include "core/gate_modes.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/gate_mode_tables.hpp"
#include "core/mode_tables.hpp"
#include "core/modes.hpp"
#include "util/error.hpp"

namespace charlie::core {
namespace {

TEST(GateState, BitHelpers) {
  GateState s = 0;
  s = gate_state_with(s, 0, true);
  s = gate_state_with(s, 2, true);
  EXPECT_TRUE(gate_state_input(s, 0));
  EXPECT_FALSE(gate_state_input(s, 1));
  EXPECT_TRUE(gate_state_input(s, 2));
  s = gate_state_with(s, 0, false);
  EXPECT_FALSE(gate_state_input(s, 0));
  EXPECT_EQ(gate_state_name(0b101u, 3), "(1,0,1)");
  EXPECT_EQ(gate_n_states(3), 8u);
}

TEST(GateModes, OutputLogic) {
  // NOR-like: high iff all inputs low.
  EXPECT_TRUE(gate_mode_output(GateTopology::kNorLike, 0b000, 3));
  EXPECT_FALSE(gate_mode_output(GateTopology::kNorLike, 0b001, 3));
  EXPECT_FALSE(gate_mode_output(GateTopology::kNorLike, 0b111, 3));
  // NAND-like: low iff all inputs high.
  EXPECT_TRUE(gate_mode_output(GateTopology::kNandLike, 0b000, 3));
  EXPECT_TRUE(gate_mode_output(GateTopology::kNandLike, 0b011, 3));
  EXPECT_FALSE(gate_mode_output(GateTopology::kNandLike, 0b111, 3));
}

// The generalized construction must reproduce the paper's NOR2 modes
// bit-for-bit (core::mode_ode delegates here; this guards the equivalence
// from the other side).
TEST(GateModes, Nor2BitIdenticalToPaperModes) {
  const NorParams nor = NorParams::paper_table1();
  const GateParams gate = GateParams::from_nor(nor);
  for (Mode m : kAllModes) {
    const GateState s = gate_state_from_mode(m);
    const auto general = gate_mode_ode(gate, s);
    const auto paper = mode_ode(m, nor);
    EXPECT_EQ(general.a().a, paper.a().a) << mode_name(m);
    EXPECT_EQ(general.a().b, paper.a().b) << mode_name(m);
    EXPECT_EQ(general.a().c, paper.a().c) << mode_name(m);
    EXPECT_EQ(general.a().d, paper.a().d) << mode_name(m);
    EXPECT_EQ(general.g().x, paper.g().x) << mode_name(m);
    EXPECT_EQ(general.g().y, paper.g().y) << mode_name(m);
    const auto ss_general = gate_mode_steady_state(gate, s, 0.31);
    const auto ss_paper = mode_steady_state(m, nor, 0.31);
    EXPECT_EQ(ss_general.x, ss_paper.x) << mode_name(m);
    EXPECT_EQ(ss_general.y, ss_paper.y) << mode_name(m);
  }
}

// NOR3 mode (0,1,0): the stack is cut at T2, the link (T3, input C low)
// drains V_N into O, and only input B's nMOS pulls the output down.
TEST(GateModes, Nor3System010MatchesHandDerivation) {
  const GateParams p = GateParams::nor3_reference();
  const auto sys = gate_mode_ode(p, 0b010);
  const double vn = 0.7;
  const double vo = 0.3;
  const ode::Vec2 d = sys.derivative({vn, vo});
  const double r3 = p.r_series[2];
  EXPECT_NEAR(d.x, -(vn - vo) / (r3 * p.c_int), 1.0);
  EXPECT_NEAR(d.y,
              ((vn - vo) / r3 - vo / p.r_parallel[1]) / p.c_out, 1.0);
}

// NOR3 mode (0,0,0): full series chain conducts; the lumped sub-chain
// R1 + R2 charges V_N from VDD.
TEST(GateModes, Nor3System000LumpsTheSubChain) {
  const GateParams p = GateParams::nor3_reference();
  const auto sys = gate_mode_ode(p, 0b000);
  const double vn = 0.2;
  const double vo = 0.1;
  const ode::Vec2 d = sys.derivative({vn, vo});
  const double r12 = p.r_series[0] + p.r_series[1];
  const double r3 = p.r_series[2];
  EXPECT_NEAR(d.x, ((p.vdd - vn) / r12 - (vn - vo) / r3) / p.c_int, 1.0);
  EXPECT_NEAR(d.y, (vn - vo) / (r3 * p.c_out), 1.0);
}

// NAND3 mode (1,1,1): full pull-down; V_M drains through the lumped lower
// chain and couples to O through T_A.
TEST(GateModes, Nand3System111MatchesHandDerivation) {
  const GateParams p = GateParams::nand3_reference();
  const auto sys = gate_mode_ode(p, 0b111);
  const double vm = 0.5;
  const double vo = 0.6;
  const ode::Vec2 d = sys.derivative({vm, vo});
  const double ra = p.r_series[0];
  const double rbc = p.r_series[1] + p.r_series[2];
  EXPECT_NEAR(d.x, ((vo - vm) / ra - vm / rbc) / p.c_int, 1.0);
  EXPECT_NEAR(d.y, -(vo - vm) / (ra * p.c_out), 1.0);
}

// NAND3 mode (0,0,0): the stack is fully isolated (V_M frozen) while the
// three parallel pMOS charge the output -- the singular-with-source case
// the generalized tables must handle.
TEST(GateModes, Nand3FrozenModeHasSourceTerm) {
  const GateParams p = GateParams::nand3_reference();
  const auto sys = gate_mode_ode(p, 0b000);
  EXPECT_FALSE(sys.has_equilibrium());
  const ode::Vec2 d = sys.derivative({0.3, 0.0});
  EXPECT_DOUBLE_EQ(d.x, 0.0);  // frozen
  double g_up = 0.0;
  for (double r : p.r_parallel) g_up += 1.0 / r;
  EXPECT_NEAR(d.y, p.vdd * g_up / p.c_out, 1e-3);
  EXPECT_TRUE(gate_mode_internal_frozen(p, 0b000));
  EXPECT_FALSE(gate_mode_internal_frozen(p, 0b111));
  EXPECT_FALSE(gate_mode_internal_frozen(p, 0b001));
}

TEST(GateModes, SteadyStatesAreEquilibria) {
  for (const GateParams& p :
       {GateParams::nor3_reference(), GateParams::nand2_reference(),
        GateParams::nand3_reference()}) {
    for (GateState s = 0; s < gate_n_states(p.n_inputs()); ++s) {
      const auto sys = gate_mode_ode(p, s);
      const auto ss = gate_mode_steady_state(p, s, 0.5);
      const ode::Vec2 d = sys.derivative(ss);
      if (gate_mode_internal_frozen(p, s)) {
        EXPECT_DOUBLE_EQ(d.x, 0.0) << gate_state_name(s, p.n_inputs());
      } else {
        EXPECT_NEAR(d.x, 0.0, 1e-3) << gate_state_name(s, p.n_inputs());
      }
      EXPECT_NEAR(d.y, 0.0, 1e-3) << gate_state_name(s, p.n_inputs());
    }
  }
}

TEST(GateParamsTest, ValidationRejectsBadValues) {
  GateParams p = GateParams::nor3_reference();
  p.r_series[1] = 0.0;
  EXPECT_THROW(p.validate(), ConfigError);
  p = GateParams::nor3_reference();
  p.r_parallel.pop_back();
  EXPECT_THROW(p.validate(), ConfigError);
  p = GateParams::nor3_reference();
  p.delta_min = -1e-12;
  EXPECT_THROW(p.validate(), ConfigError);
  p = GateParams::nand2_reference();
  p.r_series = {1e3};
  p.r_parallel = {1e3};
  EXPECT_THROW(p.validate(), ConfigError);  // arity < 2
  EXPECT_NO_THROW(GateParams::nand3_reference().validate());
}

TEST(GateParamsTest, ToStringNamesTopologyAndArity) {
  EXPECT_NE(GateParams::nor3_reference().to_string().find("Nor3Params"),
            std::string::npos);
  EXPECT_NE(GateParams::nand2_reference().to_string().find("Nand2Params"),
            std::string::npos);
}

// The scalar two-exponential basis must reproduce the full trajectory for
// every mode of every reference cell -- including the NAND frozen modes
// whose particular solution does not come from a matrix inversion.
TEST(GateModeTables, ScalarBasisReproducesTrajectoryAllStates) {
  for (const GateParams& p :
       {GateParams::from_nor(NorParams::paper_table1()),
        GateParams::nor3_reference(), GateParams::nand2_reference(),
        GateParams::nand3_reference()}) {
    const GateModeTables tables(p);
    const ode::Vec2 x_ref{0.31, 0.67};
    for (GateState s = 0; s < tables.n_states(); ++s) {
      const ModeTable& t = tables.state_table(s);
      ASSERT_TRUE(t.scalar_valid) << gate_state_name(s, p.n_inputs());
      const ode::Vec2 dev = x_ref - t.xp;
      double a1 = t.p1c * dev.x + t.p1d * dev.y;
      double a2 = dev.y - a1;
      double d = t.d;
      if (t.fold1) {
        d += a1;
        a1 = 0.0;
      }
      if (t.fold2) {
        d += a2;
        a2 = 0.0;
      }
      for (double tau : {0.0, 5e-12, 20e-12, 100e-12, 1e-9}) {
        const double scalar =
            d + a1 * std::exp(t.l1 * tau) + a2 * std::exp(t.l2 * tau);
        const double exact = t.ode.state_at(tau, x_ref).y;
        EXPECT_NEAR(scalar, exact, 1e-12 * p.vdd)
            << gate_state_name(s, p.n_inputs()) << " tau=" << tau;
      }
    }
  }
}

// Same for the full spectral form of the state evolution.
TEST(GateModeTables, SpectralFormMatchesMatrixExponential) {
  const GateParams p = GateParams::nand3_reference();
  const GateModeTables tables(p);
  const ode::Vec2 x_ref{0.11, 0.73};
  for (GateState s = 0; s < tables.n_states(); ++s) {
    const ModeTable& t = tables.state_table(s);
    ASSERT_TRUE(t.spectral_valid) << gate_state_name(s, 3);
    for (double tau : {1e-12, 30e-12, 400e-12}) {
      const ode::Vec2 dev = x_ref - t.xp;
      const ode::Vec2 spectral = t.xp +
                                 std::exp(t.l1 * tau) * (t.s1 * dev) +
                                 std::exp(t.l2 * tau) * (t.s2 * dev);
      const ode::Vec2 exact = t.ode.state_at(tau, x_ref);
      EXPECT_NEAR(spectral.x, exact.x, 1e-12) << gate_state_name(s, 3);
      EXPECT_NEAR(spectral.y, exact.y, 1e-12) << gate_state_name(s, 3);
    }
  }
}

TEST(GateModeTables, NorModeTablesIsAGateModeTables) {
  // The NOR2 subclass shares the generalized machinery and converts to the
  // base shared_ptr without copying.
  const auto nor = NorModeTables::make(NorParams::paper_table1());
  const std::shared_ptr<const GateModeTables> base = nor;
  EXPECT_EQ(base.get(), nor.get());
  EXPECT_EQ(nor->n_inputs(), 2);
  EXPECT_EQ(nor->n_states(), 4u);
  // Mode-indexed and state-indexed accessors reach the same entries.
  EXPECT_EQ(&nor->table(Mode::kS10),
            &nor->state_table(gate_state_from_inputs(true, false)));
}

TEST(GateModeTables, ValidatesOnConstruction) {
  GateParams p = GateParams::nor3_reference();
  p.c_out = 0.0;
  EXPECT_THROW(GateModeTables tables(p), ConfigError);
  EXPECT_THROW(GateModeTables::make(p), ConfigError);
}

}  // namespace
}  // namespace charlie::core
