#include "core/modes.hpp"

#include <gtest/gtest.h>

#include "core/mode_tables.hpp"
#include "util/error.hpp"

namespace charlie::core {
namespace {

TEST(Modes, MappingFromInputs) {
  EXPECT_EQ(mode_from_inputs(false, false), Mode::kS00);
  EXPECT_EQ(mode_from_inputs(false, true), Mode::kS01);
  EXPECT_EQ(mode_from_inputs(true, false), Mode::kS10);
  EXPECT_EQ(mode_from_inputs(true, true), Mode::kS11);
}

TEST(Modes, InputsRoundTrip) {
  for (Mode m : kAllModes) {
    EXPECT_EQ(mode_from_inputs(mode_input_a(m), mode_input_b(m)), m);
  }
}

TEST(Modes, Names) {
  EXPECT_EQ(mode_name(Mode::kS00), "(0,0)");
  EXPECT_EQ(mode_name(Mode::kS11), "(1,1)");
  EXPECT_EQ(mode_name(Mode::kS10), "(1,0)");
  EXPECT_EQ(mode_name(Mode::kS01), "(0,1)");
}

TEST(Modes, NorLogic) {
  EXPECT_TRUE(mode_output(Mode::kS00));
  EXPECT_FALSE(mode_output(Mode::kS01));
  EXPECT_FALSE(mode_output(Mode::kS10));
  EXPECT_FALSE(mode_output(Mode::kS11));
}

// The ODE right-hand sides transcribed from paper Section III B-E,
// evaluated symbolically against the mode_ode matrices.
TEST(Modes, System11MatchesPaper) {
  const auto p = NorParams::paper_table1();
  const auto sys = mode_ode(Mode::kS11, p);
  // CN dVN/dt = 0; CO dVO/dt = -VO (1/R3 + 1/R4).
  const ode::Vec2 d = sys.derivative({0.5, 0.6});
  EXPECT_DOUBLE_EQ(d.x, 0.0);
  EXPECT_NEAR(d.y, -0.6 * (1.0 / p.r3 + 1.0 / p.r4) / p.co, 1e-3);
  EXPECT_FALSE(sys.has_equilibrium());  // V_N frozen: singular matrix
}

TEST(Modes, System10MatchesPaper) {
  const auto p = NorParams::paper_table1();
  const auto sys = mode_ode(Mode::kS10, p);
  const double vn = 0.7;
  const double vo = 0.3;
  const ode::Vec2 d = sys.derivative({vn, vo});
  EXPECT_NEAR(d.x, -(vn - vo) / (p.r2 * p.cn), 1.0);
  EXPECT_NEAR(d.y, (-vo / p.r3 + (vn - vo) / p.r2) / p.co, 1.0);
}

TEST(Modes, System01MatchesPaper) {
  const auto p = NorParams::paper_table1();
  const auto sys = mode_ode(Mode::kS01, p);
  const double vn = 0.1;
  const double vo = 0.6;
  const ode::Vec2 d = sys.derivative({vn, vo});
  EXPECT_NEAR(d.x, (p.vdd - vn) / (p.r1 * p.cn), 1.0);
  EXPECT_NEAR(d.y, -vo / (p.r4 * p.co), 1.0);
}

TEST(Modes, System00MatchesPaper) {
  const auto p = NorParams::paper_table1();
  const auto sys = mode_ode(Mode::kS00, p);
  const double vn = 0.2;
  const double vo = 0.1;
  const ode::Vec2 d = sys.derivative({vn, vo});
  EXPECT_NEAR(d.x, ((p.vdd - vn) / p.r1 - (vn - vo) / p.r2) / p.cn, 1.0);
  EXPECT_NEAR(d.y, (vn - vo) / (p.r2 * p.co), 1.0);
}

TEST(Modes, SteadyStates) {
  const auto p = NorParams::paper_table1();
  // (0,0): both nodes charge to VDD.
  const auto s00 = mode_steady_state(Mode::kS00, p);
  EXPECT_DOUBLE_EQ(s00.x, p.vdd);
  EXPECT_DOUBLE_EQ(s00.y, p.vdd);
  // (0,1): N charged, O drained.
  const auto s01 = mode_steady_state(Mode::kS01, p);
  EXPECT_DOUBLE_EQ(s01.x, p.vdd);
  EXPECT_DOUBLE_EQ(s01.y, 0.0);
  // (1,0): both drained.
  const auto s10 = mode_steady_state(Mode::kS10, p);
  EXPECT_DOUBLE_EQ(s10.x, 0.0);
  EXPECT_DOUBLE_EQ(s10.y, 0.0);
  // (1,1): V_N frozen at the supplied history value.
  const auto s11 = mode_steady_state(Mode::kS11, p, 0.77);
  EXPECT_DOUBLE_EQ(s11.x, 0.77);
  EXPECT_DOUBLE_EQ(s11.y, 0.0);
}

TEST(Modes, SteadyStatesAreEquilibria) {
  const auto p = NorParams::paper_table1();
  for (Mode m : {Mode::kS00, Mode::kS01, Mode::kS10}) {
    const auto sys = mode_ode(m, p);
    const auto ss = mode_steady_state(m, p);
    const ode::Vec2 d = sys.derivative(ss);
    EXPECT_NEAR(d.x, 0.0, 1e-3) << mode_name(m);  // volts/second scale
    EXPECT_NEAR(d.y, 0.0, 1e-3) << mode_name(m);
  }
}

TEST(Modes, InvalidParamsRejected) {
  // mode_ode itself no longer validates (hot path); construction-time
  // entry points do.
  NorParams p = NorParams::paper_table1();
  p.r3 = -1.0;
  EXPECT_THROW(NorModeTables tables(p), ConfigError);
  p = NorParams::paper_table1();
  p.co = 0.0;
  EXPECT_THROW(NorModeTables::make(p), ConfigError);
  p = NorParams::paper_table1();
  p.delta_min = -1e-12;
  EXPECT_THROW(p.validate(), ConfigError);
}

TEST(NorParamsTest, Table1Values) {
  const auto p = NorParams::paper_table1();
  EXPECT_DOUBLE_EQ(p.r1, 37.088e3);
  EXPECT_DOUBLE_EQ(p.r2, 44.926e3);
  EXPECT_DOUBLE_EQ(p.r3, 45.150e3);
  EXPECT_DOUBLE_EQ(p.r4, 48.761e3);
  EXPECT_DOUBLE_EQ(p.cn, 59.486e-18);
  EXPECT_DOUBLE_EQ(p.co, 617.259e-18);
  EXPECT_DOUBLE_EQ(p.delta_min, 18e-12);
  EXPECT_DOUBLE_EQ(p.vth(), 0.4);
}

TEST(NorParamsTest, ToStringContainsValues) {
  const auto s = NorParams::paper_table1().to_string();
  EXPECT_NE(s.find("45.150 kOhm"), std::string::npos);
  EXPECT_NE(s.find("617.259 aF"), std::string::npos);
  EXPECT_NE(s.find("18.000 ps"), std::string::npos);
}

}  // namespace
}  // namespace charlie::core
