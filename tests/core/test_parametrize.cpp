#include "core/parametrize.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/error.hpp"

namespace charlie::core {
namespace {

// Round-trip: characteristic delays generated from known parameters must be
// recoverable (up to model degeneracy) by the fit.
TEST(Parametrize, RoundTripOnModelGeneratedTargets) {
  const NorParams truth = NorParams::paper_table1();
  const CharacteristicDelays targets = characteristic_delays_exact(truth);
  FitOptions opts;
  opts.vdd = truth.vdd;
  opts.nelder_mead_evaluations = 2000;
  const FitResult fit = fit_nor_params(targets, opts);
  // The achieved characteristic delays must match the targets closely.
  EXPECT_LT(fit.rms_error, 0.5e-12);
  EXPECT_NEAR(fit.achieved.fall_zero, targets.fall_zero, 0.5e-12);
  EXPECT_NEAR(fit.achieved.fall_minus_inf, targets.fall_minus_inf, 0.5e-12);
  EXPECT_NEAR(fit.achieved.rise_plus_inf, targets.rise_plus_inf, 1e-12);
}

TEST(Parametrize, RatioRuleRecoversPaperDeltaMin) {
  // Targets shaped like the paper's measurements (38/28 ps) must select
  // delta_min ~ 18 ps via the ratio-2 rule.
  CharacteristicDelays t;
  t.fall_minus_inf = 38e-12;
  t.fall_zero = 28e-12;
  t.fall_plus_inf = 39e-12;
  t.rise_minus_inf = 55e-12;
  t.rise_zero = 56e-12;
  t.rise_plus_inf = 53e-12;
  FitOptions opts;
  opts.nelder_mead_evaluations = 600;  // delta_min choice is closed-form
  const FitResult fit = fit_nor_params(t, opts);
  EXPECT_NEAR(fit.params.delta_min, 18e-12, 0.2e-12);
}

TEST(Parametrize, ForcedDeltaMinHonored) {
  CharacteristicDelays t;
  t.fall_minus_inf = 44e-12;
  t.fall_zero = 29e-12;
  t.fall_plus_inf = 48e-12;
  t.rise_minus_inf = 52e-12;
  t.rise_zero = 57e-12;
  t.rise_plus_inf = 50e-12;
  FitOptions opts;
  opts.forced_delta_min = 0.0;
  opts.nelder_mead_evaluations = 600;
  const FitResult fit = fit_nor_params(t, opts);
  EXPECT_DOUBLE_EQ(fit.params.delta_min, 0.0);
  // Without the pure delay the ratio cannot be matched: worse fit than
  // with the ratio rule.
  FitOptions with;
  with.nelder_mead_evaluations = 600;
  const FitResult fit2 = fit_nor_params(t, with);
  EXPECT_GT(fit.rms_error, fit2.rms_error);
}

TEST(Parametrize, FittedParametersStayPhysical) {
  CharacteristicDelays t;
  t.fall_minus_inf = 44.6e-12;
  t.fall_zero = 28.6e-12;
  t.fall_plus_inf = 48.3e-12;
  t.rise_minus_inf = 52.1e-12;
  t.rise_zero = 56.8e-12;
  t.rise_plus_inf = 50.0e-12;
  FitOptions opts;
  opts.nelder_mead_evaluations = 1200;
  const FitResult fit = fit_nor_params(t, opts);
  for (double r : {fit.params.r1, fit.params.r2, fit.params.r3,
                   fit.params.r4}) {
    EXPECT_GT(r, 500.0);
    EXPECT_LT(r, 1e6);
  }
  EXPECT_GT(fit.params.cn, 1e-18);
  EXPECT_LT(fit.params.cn, 1e-14);
  EXPECT_GT(fit.params.co, 1e-17);
  EXPECT_LT(fit.params.co, 1e-13);
  EXPECT_NO_THROW(fit.params.validate());
}

TEST(Parametrize, SeedSatisfiesClosedFormRelations) {
  CharacteristicDelays t;
  t.fall_minus_inf = 20e-12;
  t.fall_zero = 10e-12;
  t.fall_plus_inf = 21e-12;
  t.rise_minus_inf = 37e-12;
  t.rise_zero = 37e-12;
  t.rise_plus_inf = 35e-12;
  const NorParams seed = seed_from_targets(t, 0.8);
  constexpr double kLn2 = 0.6931471805599453;
  EXPECT_NEAR(kLn2 * seed.co * seed.r4, t.fall_minus_inf, 1e-15);
  const double rp = seed.r3 * seed.r4 / (seed.r3 + seed.r4);
  EXPECT_NEAR(kLn2 * seed.co * rp, t.fall_zero, 1e-15);
}

TEST(Parametrize, RejectsInvalidTargets) {
  CharacteristicDelays bad;
  bad.fall_minus_inf = 20e-12;
  bad.fall_zero = 25e-12;  // no speed-up: not a Charlie-effect gate
  bad.fall_plus_inf = 21e-12;
  bad.rise_minus_inf = 30e-12;
  bad.rise_zero = 31e-12;
  bad.rise_plus_inf = 29e-12;
  EXPECT_THROW(fit_nor_params(bad), ConfigError);
  bad.fall_zero = -1e-12;
  EXPECT_THROW(fit_nor_params(bad), ConfigError);
}

TEST(Parametrize, ReportsDiagnostics) {
  CharacteristicDelays t;
  t.fall_minus_inf = 40e-12;
  t.fall_zero = 25e-12;
  t.fall_plus_inf = 42e-12;
  t.rise_minus_inf = 50e-12;
  t.rise_zero = 53e-12;
  t.rise_plus_inf = 48e-12;
  FitOptions opts;
  opts.nelder_mead_evaluations = 400;
  const FitResult fit = fit_nor_params(t, opts);
  EXPECT_GT(fit.evaluations, 0);
  EXPECT_GE(fit.objective, 0.0);
  EXPECT_DOUBLE_EQ(fit.targets.fall_zero, t.fall_zero);
}

}  // namespace
}  // namespace charlie::core
