// Validation of the paper's closed-form equations (8)-(12) against the
// exact trajectory crossings, plus the internal identities used in their
// derivation (Section V).
#include "core/charlie_delays.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/delay_model.hpp"

namespace charlie::core {
namespace {

constexpr double kLn2 = 0.6931471805599453;

class CharlieFixture : public ::testing::Test {
 protected:
  const NorParams p_ = NorParams::paper_table1();
  NorParams raw_ = [] {
    NorParams q = NorParams::paper_table1();
    q.delta_min = 0.0;  // eqs (8)-(12) describe the pure RC trajectories
    return q;
  }();
  const NorDelayModel raw_model_{raw_};
};

TEST_F(CharlieFixture, SpectrumMode10MatchesMatrixEigenvalues) {
  const ModeSpectrum s = spectrum_mode10(p_);
  const auto eig = mode_ode(Mode::kS10, p_).eigen();
  // eigen_decompose sorts lambda1 <= lambda2; spectrum has lambda1 slow.
  EXPECT_NEAR(s.lambda1, eig.lambda2, std::fabs(eig.lambda2) * 1e-10);
  EXPECT_NEAR(s.lambda2, eig.lambda1, std::fabs(eig.lambda1) * 1e-10);
  EXPECT_LT(s.lambda1, 0.0);
  EXPECT_LT(s.lambda2, s.lambda1);
  EXPECT_NEAR(s.gamma, 0.5 * (s.lambda1 + s.lambda2), 1e-3);
}

TEST_F(CharlieFixture, SpectrumMode00MatchesMatrixEigenvalues) {
  const ModeSpectrum s = spectrum_mode00(p_);
  const auto eig = mode_ode(Mode::kS00, p_).eigen();
  EXPECT_NEAR(s.lambda1, eig.lambda2, std::fabs(eig.lambda2) * 1e-10);
  EXPECT_NEAR(s.lambda2, eig.lambda1, std::fabs(eig.lambda1) * 1e-10);
}

TEST_F(CharlieFixture, Eq8ExactAgainstTrajectory) {
  EXPECT_NEAR(paper_fall_zero(p_), raw_model_.falling_delay(0.0).delay,
              1e-16);
  // And against the printed closed form.
  EXPECT_NEAR(paper_fall_zero(p_),
              kLn2 * p_.co * p_.r3 * p_.r4 / (p_.r3 + p_.r4), 1e-18);
}

TEST_F(CharlieFixture, Eq9ExactAgainstTrajectory) {
  EXPECT_NEAR(paper_fall_minus_inf(p_), raw_model_.falling_sis_b_first(),
              1e-16);
}

TEST_F(CharlieFixture, Eq10AutoExpansionMatchesExact) {
  EXPECT_NEAR(paper_fall_plus_inf(p_), raw_model_.falling_sis_a_first(),
              1e-15);
}

TEST_F(CharlieFixture, Eq10OneStepFormIsTaylorAtW) {
  // Expanding exactly at the true crossing reproduces it; expanding near
  // it gives the paper's O((t-w)^2) error.
  const double exact = raw_model_.falling_sis_a_first();
  EXPECT_NEAR(paper_fall_plus_inf(p_, exact), exact, 1e-15);
  const double near_w = paper_fall_plus_inf(p_, exact * 1.2);
  EXPECT_NEAR(near_w, exact, 1.5e-12);
  EXPECT_GT(std::fabs(near_w - exact), 1e-18);  // one-step is approximate
}

TEST_F(CharlieFixture, Eq11MatchesExactAcrossDeltaAndHistory) {
  for (double vn0 : {0.0, p_.vdd / 2, p_.vdd}) {
    for (double delta : {0.0, 20e-12, 60e-12, 120e-12}) {
      const double approx = paper_rise_nonneg(p_, delta, vn0);
      const double exact = raw_model_.rising_delay(delta, vn0).delay;
      EXPECT_NEAR(approx, exact, 1e-14)
          << "delta=" << delta << " vn0=" << vn0;
    }
  }
}

TEST_F(CharlieFixture, Eq12MatchesExactAcrossDeltaAndHistory) {
  for (double vn0 : {0.0, p_.vdd / 2, p_.vdd}) {
    for (double delta : {-10e-12, -40e-12, -90e-12}) {
      const double approx = paper_rise_neg(p_, delta, vn0);
      const double exact = raw_model_.rising_delay(delta, vn0).delay;
      EXPECT_NEAR(approx, exact, 1e-14)
          << "delta=" << delta << " vn0=" << vn0;
    }
  }
}

TEST_F(CharlieFixture, RiseConstantIdentities) {
  // l = VDD and a/(alpha+beta) = -VDD: the identities that make the
  // printed eq (11) consistent with direct mode matching (we verified them
  // symbolically; this guards the implementation).
  const ModeSpectrum s = spectrum_mode00(p_);
  const double det = s.gamma * s.gamma - s.beta * s.beta;
  const double l =
      p_.vdd * (s.beta * s.beta - s.alpha * s.alpha) * p_.r2 / (p_.r1 * det);
  EXPECT_NEAR(l, p_.vdd, 1e-12);
  const double a = p_.vdd * (s.alpha + s.gamma) * (s.alpha + s.beta) /
                   (p_.cn * p_.r1 * det);
  EXPECT_NEAR(a / (s.alpha + s.beta), -p_.vdd, 1e-9);
  // a + b = VDD/(CN R2) - (alpha+beta) VDD.
  const double b = p_.vdd * (s.beta * s.beta - s.alpha * s.alpha) /
                   (p_.cn * p_.r1 * det);
  EXPECT_NEAR((a + b) / p_.vdd,
              1.0 / (p_.cn * p_.r2 * p_.vdd) * p_.vdd - (s.alpha + s.beta),
              std::fabs(s.alpha + s.beta) * 1e-9);
}

TEST_F(CharlieFixture, RatioArgumentOfSectionIV) {
  // R3 ~ R4 => fall(-inf)/fall(0) ~ (R3+R4)/R3 ~ 2 for the raw RC model.
  const double ratio = paper_fall_minus_inf(p_) / paper_fall_zero(p_);
  EXPECT_NEAR(ratio, (p_.r3 + p_.r4) / p_.r3, 1e-12);
  EXPECT_NEAR(ratio, 2.08, 0.01);
}

TEST_F(CharlieFixture, DeltaMinForRatioReproduces18ps) {
  // Paper Section IV: measured 38/28 ps with achievable ratio 2 gives
  // delta_min = 18 ps.
  EXPECT_NEAR(delta_min_for_ratio(38e-12, 28e-12, 2.0), 18e-12, 1e-15);
}

TEST_F(CharlieFixture, CharacteristicDelaysExactIncludesDeltaMin) {
  const auto with = characteristic_delays_exact(p_);
  const auto without = characteristic_delays_exact(raw_);
  EXPECT_NEAR(with.fall_zero - without.fall_zero, p_.delta_min, 1e-15);
  EXPECT_NEAR(with.rise_plus_inf - without.rise_plus_inf, p_.delta_min,
              1e-15);
}

TEST_F(CharlieFixture, PaperReportedPercentagesApproximatelyReproduced) {
  // Fig 2b annotations: about -28 % speed-up at Delta = 0 relative to both
  // asymptotes (for the delta_min-corrected model).
  const auto d = characteristic_delays_exact(p_);
  EXPECT_NEAR(d.fall_zero / d.fall_minus_inf - 1.0, -0.28, 0.02);
  EXPECT_NEAR(d.fall_zero / d.fall_plus_inf - 1.0, -0.28, 0.02);
}

TEST_F(CharlieFixture, TaylorCrossingSolveConvergesOnRealTrajectory) {
  // The eq (10) trajectory: mode (1,0) from (VDD, VDD). The solver should
  // land on the same crossing the delay model finds, flagged converged in a
  // handful of Newton steps.
  const ModeSpectrum s = spectrum_mode10(raw_);
  const double vth = raw_.vth();
  const double c2 = vth * ((s.alpha + s.beta) * raw_.cn * raw_.r2 - 1.0) / s.beta;
  const double c1 = raw_.vdd * raw_.cn * raw_.r2 - c2;
  const double tau = 1.0 / std::fabs(s.lambda1);
  const auto r = taylor_crossing_solve(vth, 0.0, c1 * (s.alpha + s.beta),
                                       s.lambda1, c2 * (s.alpha - s.beta),
                                       s.lambda2, kAutoExpansion, 0.5 * tau,
                                       1e-3 * tau);
  EXPECT_TRUE(r.converged);
  EXPECT_LE(r.iterations, 20);
  EXPECT_NEAR(r.t, raw_model_.falling_sis_a_first(), 1e-15);
}

TEST_F(CharlieFixture, TaylorCrossingSolveReportsNonConvergence) {
  // Pathological input: both exponentials decay from positive coefficients,
  // so V_O(t) stays in (0, k1+k2] and never reaches vth = -1. Newton chases
  // the flat tail, saturates at the clamp bound, and must NOT be reported
  // as converged (previously the last iterate was returned silently).
  const double l1 = -1e9;   // tau_slow = 1 ns
  const double l2 = -5e9;
  const auto r = taylor_crossing_solve(/*vth=*/-1.0, /*offset=*/0.0,
                                       /*k1=*/1.0, l1, /*k2=*/0.5, l2,
                                       kAutoExpansion, /*seed=*/1e-9,
                                       /*t_floor=*/1e-12);
  EXPECT_FALSE(r.converged);
  EXPECT_GE(r.iterations, 1);
  // Debug builds escalate the same failure to an assertion in the internal
  // eq (10)-(12) wrapper; the public solver must stay throw-free so callers
  // can branch on the status.
}

TEST_F(CharlieFixture, TaylorCrossingSolveFixedWIsOneStep) {
  const double exact = raw_model_.falling_sis_a_first();
  const ModeSpectrum s = spectrum_mode10(raw_);
  const double vth = raw_.vth();
  const double c2 = vth * ((s.alpha + s.beta) * raw_.cn * raw_.r2 - 1.0) / s.beta;
  const double c1 = raw_.vdd * raw_.cn * raw_.r2 - c2;
  const auto r = taylor_crossing_solve(vth, 0.0, c1 * (s.alpha + s.beta),
                                       s.lambda1, c2 * (s.alpha - s.beta),
                                       s.lambda2, /*w=*/exact, 0.0, 0.0);
  EXPECT_TRUE(r.converged);
  EXPECT_EQ(r.iterations, 1);
  EXPECT_NEAR(r.t, exact, 1e-15);
}

TEST_F(CharlieFixture, RisingParameterDependencies) {
  // Paper Section V: delta_rise(0)/(inf) depend on R1, R2, C_N, C_O but
  // NOT on R3/R4 (for GND history the (1,0) interlude keeps V_N at 0).
  NorParams q = raw_;
  q.r3 *= 1.5;
  q.r4 *= 0.7;
  const NorDelayModel m2(q);
  EXPECT_NEAR(m2.rising_delay(0.0, 0.0).delay,
              raw_model_.rising_delay(0.0, 0.0).delay, 1e-15);
  EXPECT_NEAR(m2.rising_sis_a_first(), raw_model_.rising_sis_a_first(),
              1e-15);
  // And delta_fall(-inf) depends on R4 and C_O only (eq (9)).
  NorParams r = raw_;
  r.r1 *= 2.0;
  r.r2 *= 0.5;
  r.cn *= 3.0;
  const NorDelayModel m3(r);
  EXPECT_NEAR(m3.falling_sis_b_first(), raw_model_.falling_sis_b_first(),
              1e-15);
}

}  // namespace
}  // namespace charlie::core
