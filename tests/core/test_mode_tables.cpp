#include "core/mode_tables.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/error.hpp"

namespace charlie::core {
namespace {

class ModeTablesFixture : public ::testing::Test {
 protected:
  const NorParams params_ = NorParams::paper_table1();
  const NorModeTables tables_{params_};
};

TEST_F(ModeTablesFixture, MatchesPerCallDerivation) {
  for (Mode m : kAllModes) {
    const ModeTable& t = tables_.table(m);
    const ode::AffineOde2 fresh = mode_ode(m, params_);
    EXPECT_EQ(t.ode.a().a, fresh.a().a) << mode_name(m);
    EXPECT_EQ(t.ode.a().d, fresh.a().d) << mode_name(m);
    EXPECT_EQ(t.ode.eigen().lambda1, fresh.eigen().lambda1) << mode_name(m);
    const ode::Vec2 steady = mode_steady_state(m, params_, 0.0);
    EXPECT_EQ(t.steady.x, steady.x) << mode_name(m);
    EXPECT_EQ(t.steady.y, steady.y) << mode_name(m);
  }
  EXPECT_EQ(tables_.vth(), params_.vth());
  EXPECT_GT(tables_.horizon(), 0.0);
}

// The scalar basis V_O(tau) = d + a1 e^{l1 tau} + a2 e^{l2 tau} with the
// precomputed projector row must reproduce the full matrix trajectory from
// an arbitrary entry state, in every mode.
TEST_F(ModeTablesFixture, ScalarBasisReproducesTrajectory) {
  const ode::Vec2 x_ref{0.31, 0.67};
  for (Mode m : kAllModes) {
    const ModeTable& t = tables_.table(m);
    ASSERT_TRUE(t.scalar_valid) << mode_name(m);
    const ode::Vec2 dev = x_ref - t.xp;
    double a1 = t.p1c * dev.x + t.p1d * dev.y;
    double a2 = dev.y - a1;
    double d = t.d;
    if (t.fold1) {
      d += a1;
      a1 = 0.0;
    }
    if (t.fold2) {
      d += a2;
      a2 = 0.0;
    }
    for (double tau : {0.0, 5e-12, 20e-12, 100e-12, 1e-9}) {
      const double scalar =
          d + a1 * std::exp(t.l1 * tau) + a2 * std::exp(t.l2 * tau);
      const double exact = t.ode.state_at(tau, x_ref).y;
      EXPECT_NEAR(scalar, exact, 1e-12 * params_.vdd)
          << mode_name(m) << " tau=" << tau;
    }
  }
}

TEST_F(ModeTablesFixture, SharedTableIsOnePerMake) {
  const auto shared = NorModeTables::make(params_);
  ASSERT_NE(shared, nullptr);
  EXPECT_EQ(shared.use_count(), 1);
  const auto copy = shared;
  EXPECT_EQ(shared.use_count(), 2);
  EXPECT_EQ(&copy->table(Mode::kS00), &shared->table(Mode::kS00));
}

TEST(ModeTables, ValidatesOnConstruction) {
  NorParams p = NorParams::paper_table1();
  p.r1 = 0.0;
  EXPECT_THROW(NorModeTables tables(p), ConfigError);
  EXPECT_THROW(NorModeTables::make(p), ConfigError);
}

}  // namespace
}  // namespace charlie::core
