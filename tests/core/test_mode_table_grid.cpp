#include "core/mode_table_grid.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/gate_params.hpp"
#include "util/error.hpp"

namespace charlie::core {
namespace {

// Variation span used throughout: +/- 3.5 sigma with sigmas of a few percent
// -- the range sim::ProcessVariation builds grids for.
ModeTableGrid::Spec three_axis_spec() {
  ModeTableGrid::Spec spec;
  spec.vdd_scale = {0.9, 1.1, 3};
  spec.vth_shift = {-0.04, 0.04, 3};
  spec.drive_scale = {0.85, 1.15, 3};
  return spec;
}

double rel_err(double approx, double exact) {
  const double scale = std::abs(exact) > 1e-30 ? std::abs(exact) : 1e-30;
  return std::abs(approx - exact) / scale;
}

TEST(ModeTableGrid, ExactAtGridCorners) {
  const GateParams nominal = GateParams::nor2_reference();
  const ModeTableGrid grid(nominal, three_axis_spec());
  EXPECT_EQ(grid.n_corners(), 27u);

  ProcessPoint corner;
  corner.vdd_scale = 0.9;
  corner.vth_shift = 0.04;
  corner.drive_scale = 1.15;
  const auto blended = grid.interpolate(corner);
  GateModeTables exact(nominal);
  exact.rederive_at(nominal, corner);
  for (GateState s = 0; s < exact.n_states(); ++s) {
    const ModeTable& a = blended->state_table(s);
    const ModeTable& b = exact.state_table(s);
    // At a corner the stencil collapses to one point: bit-exact.
    EXPECT_EQ(a.d, b.d);
    EXPECT_EQ(a.l1, b.l1);
    EXPECT_EQ(a.l2, b.l2);
    EXPECT_EQ(a.p1c, b.p1c);
    EXPECT_EQ(a.p1d, b.p1d);
    EXPECT_EQ(a.steady.y, b.steady.y);
  }
  EXPECT_EQ(blended->horizon(), exact.horizon());
}

TEST(ModeTableGrid, NominalCenterIsNearExact) {
  // Odd level counts place a grid level within rounding of nominal (the
  // axis-value arithmetic keeps it from being bit-exact), so the nominal
  // sample costs only ulp-level interpolation error.
  const GateParams nominal = GateParams::nand2_reference();
  const ModeTableGrid grid(nominal, three_axis_spec());
  const auto blended = grid.interpolate(ProcessPoint::nominal());
  const GateModeTables exact(nominal);
  for (GateState s = 0; s < exact.n_states(); ++s) {
    EXPECT_LT(rel_err(blended->state_table(s).d, exact.state_table(s).d),
              1e-12);
    EXPECT_LT(rel_err(blended->state_table(s).l1, exact.state_table(s).l1),
              1e-12);
    EXPECT_LT(rel_err(blended->state_table(s).l2, exact.state_table(s).l2),
              1e-12);
  }
  EXPECT_EQ(blended->vth(), exact.vth());
}

TEST(ModeTableGrid, OffGridPointsTrackExactDerivation) {
  // Multilinear error over these spans stays well under a percent on every
  // expansion field (the crossing-level bound lives in
  // tests/integration/test_process_rk45.cpp and docs/statistical_timing.md).
  for (const GateParams& nominal :
       {GateParams::nor2_reference(), GateParams::nand2_reference(),
        GateParams::nor3_reference(), GateParams::nand3_reference()}) {
    const ModeTableGrid grid(nominal, three_axis_spec());
    ProcessPoint p;
    p.vdd_scale = 1.037;
    p.vth_shift = -0.013;
    p.drive_scale = 0.96;
    const auto blended = grid.interpolate(p);
    GateModeTables exact(nominal);
    exact.rederive_at(nominal, p);
    for (GateState s = 0; s < exact.n_states(); ++s) {
      const ModeTable& a = blended->state_table(s);
      const ModeTable& b = exact.state_table(s);
      ASSERT_TRUE(b.scalar_valid);
      ASSERT_TRUE(a.scalar_valid);
      EXPECT_LT(rel_err(a.d, b.d), 1e-2);
      if (!b.fold1) EXPECT_LT(rel_err(a.l1, b.l1), 1e-2);
      EXPECT_LT(rel_err(a.l2, b.l2), 1e-2);
      EXPECT_LT(rel_err(a.steady.y, b.steady.y), 1e-2);
      EXPECT_EQ(a.fold1, b.fold1);
      EXPECT_EQ(a.fold2, b.fold2);
    }
    // The horizon blends 1/lambda (convex), so its multilinear error is the
    // largest of the set -- still a search window, not a model quantity.
    EXPECT_LT(rel_err(blended->horizon(), exact.horizon()), 2.5e-2);
    // vth and params are exact, not interpolated.
    EXPECT_EQ(blended->vth(), exact.vth());
    EXPECT_EQ(blended->delta_min(), exact.delta_min());
  }
}

TEST(ModeTableGrid, InterpolateIntoIsAllocationFreeRebind) {
  // The per-sample path: one worker-local table set, rebound repeatedly.
  const GateParams nominal = GateParams::nor2_reference();
  const ModeTableGrid grid(nominal, three_axis_spec());
  GateModeTables local(nominal);
  ProcessPoint a;
  a.vdd_scale = 0.95;
  ProcessPoint b;
  b.vdd_scale = 1.05;
  grid.interpolate_into(a, local);
  const double d_a = local.state_table(0).d;
  grid.interpolate_into(b, local);
  const double d_b = local.state_table(0).d;
  EXPECT_NE(d_a, d_b);
  // Rebinding back reproduces the first sample bit-exactly.
  grid.interpolate_into(a, local);
  EXPECT_EQ(local.state_table(0).d, d_a);
}

TEST(ModeTableGrid, PinnedAxisRejectsOffPinQueries) {
  ModeTableGrid::Spec spec;  // all axes pinned at nominal
  const ModeTableGrid grid(GateParams::nor2_reference(), spec);
  EXPECT_EQ(grid.n_corners(), 1u);
  ProcessPoint p;
  p.vdd_scale = 1.01;
  EXPECT_THROW(grid.interpolate(p), ConfigError);
  // The pinned coordinate itself is served exactly.
  const auto at_nominal = grid.interpolate(ProcessPoint::nominal());
  const GateModeTables exact(GateParams::nor2_reference());
  EXPECT_EQ(at_nominal->state_table(1).d, exact.state_table(1).d);
}

TEST(ModeTableGrid, RejectsMalformedSpecs) {
  const GateParams nominal = GateParams::nor2_reference();
  ModeTableGrid::Spec spec;
  spec.vdd_scale = {1.1, 0.9, 3};  // hi < lo
  EXPECT_THROW(ModeTableGrid(nominal, spec), ConfigError);
  spec = ModeTableGrid::Spec{};
  spec.vth_shift = {0.0, 0.1, 1};  // pinned but lo != hi
  EXPECT_THROW(ModeTableGrid(nominal, spec), ConfigError);
  spec = ModeTableGrid::Spec{};
  spec.drive_scale = {0.9, 1.1, 0};  // zero levels
  EXPECT_THROW(ModeTableGrid(nominal, spec), ConfigError);
}

TEST(ModeTableGrid, RejectsCornersOutsideValidity) {
  ModeTableGrid::Spec spec;
  spec.vth_shift = {-0.6, 0.6, 3};  // hi corner closes the overdrive
  EXPECT_THROW(ModeTableGrid(GateParams::nor2_reference(), spec), ConfigError);
}

TEST(ModeTableGrid, ArityMismatchThrows) {
  const ModeTableGrid grid(GateParams::nor2_reference(), three_axis_spec());
  GateModeTables three(GateParams::nor3_reference());
  EXPECT_THROW(grid.interpolate_into(ProcessPoint::nominal(), three),
               ConfigError);
}

}  // namespace
}  // namespace charlie::core
