// Behavioural tests of the MIS delay model (paper Section IV).
#include "core/delay_model.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace charlie::core {
namespace {

constexpr double kLn2 = 0.6931471805599453;

class DelayModelFixture : public ::testing::Test {
 protected:
  const NorParams params_ = NorParams::paper_table1();
  const NorDelayModel model_{params_};
};

TEST_F(DelayModelFixture, PaperCharacteristicValuesFalling) {
  // With Table I parameters the model must reproduce the paper's measured
  // characteristic delays: ~38 ps for fall(-inf), 28 ps for fall(0).
  EXPECT_NEAR(model_.falling_sis_b_first(), 38.86e-12, 0.1e-12);
  EXPECT_NEAR(model_.falling_delay(0.0).delay, 28.03e-12, 0.1e-12);
  // fall(-inf) = delta_min + ln2 R4 CO exactly (eq (9)).
  EXPECT_NEAR(model_.falling_sis_b_first(),
              params_.delta_min + kLn2 * params_.r4 * params_.co, 1e-15);
}

TEST_F(DelayModelFixture, PaperCharacteristicValuesRising) {
  // Fig 2d regime: 52-56 ps.
  EXPECT_NEAR(model_.rising_sis_a_first(), 52.74e-12, 0.1e-12);
  EXPECT_NEAR(model_.rising_sis_b_first(), 55.0e-12, 0.1e-12);
}

TEST_F(DelayModelFixture, FallingCharlieSpeedUp) {
  // delta = 0 is the global minimum of the falling MIS curve.
  const double d0 = model_.falling_delay(0.0).delay;
  for (double delta : {-60e-12, -30e-12, -10e-12, 10e-12, 30e-12, 60e-12}) {
    EXPECT_GT(model_.falling_delay(delta).delay, d0) << "delta=" << delta;
  }
  // Speed-up magnitude ~ -28 % (paper Fig 2b / Fig 5).
  const double speedup = d0 / model_.falling_sis_b_first() - 1.0;
  EXPECT_NEAR(speedup, -0.28, 0.03);
}

TEST_F(DelayModelFixture, FallingCurveMonotoneAwayFromZero) {
  double prev = model_.falling_delay(0.0).delay;
  for (double delta = 5e-12; delta <= 100e-12; delta += 5e-12) {
    const double d = model_.falling_delay(delta).delay;
    EXPECT_GE(d, prev - 1e-15) << "delta=" << delta;
    prev = d;
  }
  prev = model_.falling_delay(0.0).delay;
  for (double delta = -5e-12; delta >= -100e-12; delta -= 5e-12) {
    const double d = model_.falling_delay(delta).delay;
    EXPECT_GE(d, prev - 1e-15) << "delta=" << delta;
    prev = d;
  }
}

TEST_F(DelayModelFixture, FallingConvergesToSisLimits) {
  EXPECT_NEAR(model_.falling_delay(-500e-12).delay,
              model_.falling_sis_b_first(), 1e-15);
  EXPECT_NEAR(model_.falling_delay(500e-12).delay,
              model_.falling_sis_a_first(), 1e-15);
}

TEST_F(DelayModelFixture, FallingSisAsymmetryFromT2) {
  // Paper Section II: the A-first case is slower (T2 couples C_N).
  EXPECT_GT(model_.falling_sis_a_first(), model_.falling_sis_b_first());
}

TEST_F(DelayModelFixture, RisingConvergesToSisLimits) {
  EXPECT_NEAR(model_.rising_delay(-800e-12, 0.0).delay,
              model_.rising_sis_b_first(), 1e-14);
  EXPECT_NEAR(model_.rising_delay(800e-12, 0.0).delay,
              model_.rising_sis_a_first(), 1e-14);
}

TEST_F(DelayModelFixture, RisingHistoryAsymmetry) {
  // Precharged N (A first, Delta = +inf) is faster.
  EXPECT_LT(model_.rising_sis_a_first(), model_.rising_sis_b_first());
}

TEST_F(DelayModelFixture, DocumentedDeficiencyNoRisingPeakForGndHistory) {
  // Paper Section IV: for V_N(0) = GND the model FAILS to produce the MIS
  // slow-down peak around Delta = 0 -- the curve must interpolate
  // monotonically between the SIS limits instead. This guards the honest
  // reproduction of the model's known limitation.
  const double d_zero = model_.rising_delay(0.0, 0.0).delay;
  const double lo = std::min(model_.rising_sis_a_first(),
                             model_.rising_sis_b_first());
  const double hi = std::max(model_.rising_sis_a_first(),
                             model_.rising_sis_b_first());
  EXPECT_GE(d_zero, lo - 1e-15);
  EXPECT_LE(d_zero, hi + 1e-15);  // no peak above the SIS values
}

TEST_F(DelayModelFixture, RisingDeltaNegativeInsensitiveForGndHistory) {
  // With V_N = GND, mode (1,0) keeps V_N at 0, so every Delta < 0 gives the
  // same delay (the paper's flat branch in Fig 6).
  const double d1 = model_.rising_delay(-20e-12, 0.0).delay;
  const double d2 = model_.rising_delay(-60e-12, 0.0).delay;
  EXPECT_NEAR(d1, d2, 1e-15);
}

TEST_F(DelayModelFixture, RisingHistoryValueMatters) {
  // For Delta < 0 with precharged V_N, the drain through R2 is partial, so
  // delays differ from the GND history.
  const double gnd = model_.rising_delay(-30e-12, 0.0).delay;
  const double vdd = model_.rising_delay(-30e-12, params_.vdd).delay;
  EXPECT_LT(vdd, gnd);  // leftover charge on N helps the pull-up
}

TEST_F(DelayModelFixture, DeltaMinShiftsDelaysUniformly) {
  NorParams no_dmin = params_;
  no_dmin.delta_min = 0.0;
  const NorDelayModel raw(no_dmin);
  for (double delta : {-40e-12, 0.0, 40e-12}) {
    EXPECT_NEAR(model_.falling_delay(delta).delay,
                raw.falling_delay(delta).delay + params_.delta_min, 1e-15);
    EXPECT_NEAR(model_.rising_delay(delta, 0.0).delay,
                raw.rising_delay(delta, 0.0).delay + params_.delta_min,
                1e-15);
  }
}

TEST_F(DelayModelFixture, IntermediateModeBookkeeping) {
  EXPECT_EQ(model_.falling_delay(10e-12).intermediate, Mode::kS10);
  EXPECT_EQ(model_.falling_delay(-10e-12).intermediate, Mode::kS01);
  EXPECT_EQ(model_.falling_delay(0.0).intermediate, Mode::kS11);
  EXPECT_EQ(model_.rising_delay(10e-12).intermediate, Mode::kS01);
  EXPECT_EQ(model_.rising_delay(-10e-12).intermediate, Mode::kS10);
  EXPECT_EQ(model_.rising_delay(0.0).intermediate, Mode::kS00);
}

TEST_F(DelayModelFixture, SlowestTimeConstantPositive) {
  EXPECT_GT(model_.slowest_time_constant(), 1e-12);
  EXPECT_LT(model_.slowest_time_constant(), 1e-9);
}

// Parameterized continuity sweep: the MIS delay curves are continuous in
// Delta (no jumps at the Delta = 0 seam or anywhere else).
class DelayContinuity : public ::testing::TestWithParam<double> {};

TEST_P(DelayContinuity, FallingCurveContinuousAt) {
  const NorDelayModel model(NorParams::paper_table1());
  const double delta = GetParam();
  const double h = 0.01e-12;
  const double left = model.falling_delay(delta - h).delay;
  const double right = model.falling_delay(delta + h).delay;
  EXPECT_LT(std::fabs(right - left), 0.5e-12) << "delta=" << delta;
}

TEST_P(DelayContinuity, RisingCurveContinuousAt) {
  const NorDelayModel model(NorParams::paper_table1());
  const double delta = GetParam();
  const double h = 0.01e-12;
  const double left = model.rising_delay(delta - h, 0.0).delay;
  const double right = model.rising_delay(delta + h, 0.0).delay;
  EXPECT_LT(std::fabs(right - left), 0.5e-12) << "delta=" << delta;
}

INSTANTIATE_TEST_SUITE_P(Seams, DelayContinuity,
                         ::testing::Values(-60e-12, -20e-12, -5e-12, 0.0,
                                           5e-12, 20e-12, 60e-12));

}  // namespace
}  // namespace charlie::core
