#include "obs/trace_recorder.hpp"

#include <gtest/gtest.h>

#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "util/thread_pool.hpp"

namespace charlie::obs {
namespace {

// Every test arms/disarms explicitly; make sure a failing test cannot leak
// an armed recorder into its neighbors.
class TraceRecorderTest : public ::testing::Test {
 protected:
  void TearDown() override { TraceRecorder::stop(); }
};

std::map<std::string, int> count_by_name(
    const TraceRecorder::Snapshot& snapshot) {
  std::map<std::string, int> counts;
  for (const TraceEvent& event : snapshot.events) ++counts[event.name];
  return counts;
}

TEST_F(TraceRecorderTest, DisarmedRecordsNothing) {
  EXPECT_FALSE(TraceRecorder::armed());
  { CHARLIE_OBS_SPAN("test.span"); }
  CHARLIE_OBS_INSTANT("test.instant");
  TraceRecorder::start();
  TraceRecorder::stop();
  const auto snapshot = TraceRecorder::collect();
  EXPECT_TRUE(snapshot.events.empty());
  EXPECT_EQ(snapshot.n_dropped, 0u);
}

TEST_F(TraceRecorderTest, RecordsSpansAndInstants) {
  TraceRecorder::start();
  EXPECT_TRUE(TraceRecorder::armed());
  {
    CHARLIE_OBS_SPAN("test.outer", "k", 7);
    { CHARLIE_OBS_SPAN("test.inner"); }
    CHARLIE_OBS_INSTANT("test.mark", "i", 3);
  }
  TraceRecorder::stop();
  EXPECT_FALSE(TraceRecorder::armed());
  const auto snapshot = TraceRecorder::collect();
  ASSERT_EQ(snapshot.events.size(), 3u);
  const auto counts = count_by_name(snapshot);
  EXPECT_EQ(counts.at("test.outer"), 1);
  EXPECT_EQ(counts.at("test.inner"), 1);
  EXPECT_EQ(counts.at("test.mark"), 1);
  for (const TraceEvent& event : snapshot.events) {
    if (std::string(event.name) == "test.mark") {
      EXPECT_EQ(event.phase, 'i');
      EXPECT_EQ(event.dur_ns, -1);
      EXPECT_EQ(event.v0, 3);
    } else {
      EXPECT_EQ(event.phase, 'X');
      EXPECT_GE(event.dur_ns, 0);
    }
    if (std::string(event.name) == "test.outer") {
      ASSERT_NE(event.k0, nullptr);
      EXPECT_STREQ(event.k0, "k");
      EXPECT_EQ(event.v0, 7);
    }
  }
}

TEST_F(TraceRecorderTest, LabelIsCopiedAndTruncated) {
  TraceRecorder::start();
  {
    ScopedSpan span("test.labeled");
    span.label("NOR2");
  }
  {
    ScopedSpan span("test.labeled");
    span.label("a-very-long-label-that-exceeds-the-fixed-field");
  }
  TraceRecorder::stop();
  const auto snapshot = TraceRecorder::collect();
  ASSERT_EQ(snapshot.events.size(), 2u);
  EXPECT_EQ(std::string(snapshot.events[0].label), "NOR2");
  const std::string truncated = snapshot.events[1].label;
  EXPECT_EQ(truncated.size(), sizeof(TraceEvent{}.label) - 1);
  EXPECT_EQ(truncated,
            std::string("a-very-long-label-that-exceeds-the-fixed-field")
                .substr(0, truncated.size()));
}

TEST_F(TraceRecorderTest, RingOverflowCountsDrops) {
  TraceRecorder::start(/*capacity_per_thread=*/8);
  for (int i = 0; i < 20; ++i) CHARLIE_OBS_INSTANT("test.flood");
  TraceRecorder::stop();
  const auto snapshot = TraceRecorder::collect();
  EXPECT_EQ(snapshot.events.size(), 8u);
  EXPECT_EQ(snapshot.n_dropped, 12u);
  // The ring keeps the newest events, in record order.
  for (std::size_t i = 1; i < snapshot.events.size(); ++i) {
    EXPECT_GE(snapshot.events[i].t_start_ns,
              snapshot.events[i - 1].t_start_ns);
  }
}

TEST_F(TraceRecorderTest, StartClearsPreviousEvents) {
  TraceRecorder::start();
  CHARLIE_OBS_INSTANT("test.first");
  TraceRecorder::stop();
  TraceRecorder::start();
  CHARLIE_OBS_INSTANT("test.second");
  TraceRecorder::stop();
  const auto snapshot = TraceRecorder::collect();
  ASSERT_EQ(snapshot.events.size(), 1u);
  EXPECT_STREQ(snapshot.events[0].name, "test.second");
}

TEST_F(TraceRecorderTest, MultiThreadedRecordingGetsDistinctTids) {
  TraceRecorder::start();
  std::vector<std::thread> threads;
  for (int t = 0; t < 3; ++t) {
    threads.emplace_back([] {
      for (int i = 0; i < 5; ++i) CHARLIE_OBS_INSTANT("test.worker");
    });
  }
  for (auto& thread : threads) thread.join();
  TraceRecorder::stop();
  const auto snapshot = TraceRecorder::collect();
  EXPECT_EQ(snapshot.events.size(), 15u);
  std::map<std::uint32_t, int> per_tid;
  for (const TraceEvent& event : snapshot.events) ++per_tid[event.tid];
  EXPECT_EQ(per_tid.size(), 3u);
  for (const auto& [tid, n] : per_tid) EXPECT_EQ(n, 5);
}

TEST_F(TraceRecorderTest, PoolChunksAreTracedWhenArmed) {
  util::ThreadPool pool(2);
  TraceRecorder::start();
  pool.parallel_for(64, 8, [](std::size_t, std::size_t) {});
  TraceRecorder::stop();
  const auto snapshot = TraceRecorder::collect();
  const auto counts = count_by_name(snapshot);
  // 64 items at grain 8 = exactly 8 claimed chunks, whoever claimed them.
  EXPECT_EQ(counts.at("pool.chunk"), 8);
  // Disarmed again: the observer is uninstalled, nothing records.
  pool.parallel_for(16, 8, [](std::size_t, std::size_t) {});
  EXPECT_EQ(TraceRecorder::collect().events.size(), snapshot.events.size());
}

TEST_F(TraceRecorderTest, ChromeTraceJsonShape) {
  TraceRecorder::start();
  {
    ScopedSpan span("test.span", "k0", 1, "k1", 2);
    span.label("lbl");
  }
  CHARLIE_OBS_INSTANT("test.instant");
  TraceRecorder::stop();
  std::ostringstream os;
  write_chrome_trace(TraceRecorder::collect(), os);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"test.span\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"dur\":"), std::string::npos);
  EXPECT_NE(json.find("\"k0\":1"), std::string::npos);
  EXPECT_NE(json.find("\"k1\":2"), std::string::npos);
  EXPECT_NE(json.find("\"label\":\"lbl\""), std::string::npos);
  EXPECT_NE(json.find("\"n_dropped\":0"), std::string::npos);
}

}  // namespace
}  // namespace charlie::obs
