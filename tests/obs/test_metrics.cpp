#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "util/diagnostics.hpp"

namespace charlie::obs {
namespace {

TEST(LogHistogram, BinsPowersOfTwo) {
  LogHistogram h;
  h.add(1.0);    // [2^0, 2^1)
  h.add(1.5);    // same bin
  h.add(2.0);    // [2^1, 2^2)
  h.add(0.75);   // [2^-1, 2^0)
  EXPECT_EQ(h.count(), 4u);
  const std::size_t bin0 = static_cast<std::size_t>(0 - LogHistogram::kMinExp);
  EXPECT_EQ(h.bins()[bin0], 2u);
  EXPECT_EQ(h.bins()[bin0 + 1], 1u);
  EXPECT_EQ(h.bins()[bin0 - 1], 1u);
  EXPECT_DOUBLE_EQ(h.min(), 0.75);
  EXPECT_DOUBLE_EQ(h.max(), 2.0);
  EXPECT_DOUBLE_EQ(h.sum(), 1.0 + 1.5 + 2.0 + 0.75);
  EXPECT_DOUBLE_EQ(LogHistogram::bin_lo(bin0), 1.0);
}

TEST(LogHistogram, EngineScaleValues) {
  // The distributions this histogram exists for: second-scale delays down
  // to sub-picosecond, and event counts up to millions.
  LogHistogram h;
  h.add(1e-12);     // typical gate delay
  h.add(150e-12);   // stimulus mu
  h.add(1e6);       // event count
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.underflow(), 0u);
  EXPECT_EQ(h.overflow(), 0u);
}

TEST(LogHistogram, UnderOverflowAndNonPositive) {
  LogHistogram h;
  h.add(0.0);    // no log2 bin
  h.add(-3.0);   // no log2 bin
  h.add(1e-300);  // below 2^-50
  h.add(1e300);   // above 2^34
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.underflow(), 3u);
  EXPECT_EQ(h.overflow(), 1u);
  // Moments still cover every sample.
  EXPECT_DOUBLE_EQ(h.min(), -3.0);
  EXPECT_DOUBLE_EQ(h.max(), 1e300);
}

TEST(LogHistogram, MergeMatchesSequential) {
  LogHistogram a;
  LogHistogram b;
  LogHistogram sequential;
  for (int i = 1; i <= 10; ++i) {
    // Exact quarters: merged partial sums associate exactly, so even the
    // fp moments compare equal (operator== is exact).
    const double v = 0.25 * i;
    (i <= 5 ? a : b).add(v);
    sequential.add(v);
  }
  a.merge(b);
  EXPECT_TRUE(a == sequential);
}

TEST(MetricsRegistry, CountersAndHistograms) {
  MetricsRegistry m;
  EXPECT_TRUE(m.empty());
  m.add("runs");
  m.add("runs", 4);
  m.add("events", 100);
  m.observe("delay", 1e-10);
  m.observe("delay", 2e-10);
  EXPECT_EQ(m.counter("runs"), 5);
  EXPECT_EQ(m.counter("events"), 100);
  EXPECT_EQ(m.counter("never"), 0);
  ASSERT_NE(m.histogram("delay"), nullptr);
  EXPECT_EQ(m.histogram("delay")->count(), 2u);
  EXPECT_EQ(m.histogram("never"), nullptr);
}

TEST(MetricsRegistry, MergeInFixedOrderIsDeterministic) {
  // Partials merged in the same order produce identical registries, no
  // matter how the samples were distributed over the partials -- the
  // run-order-reduction property BatchRunner relies on.
  auto fill = [](MetricsRegistry& m, int lo, int hi) {
    for (int i = lo; i < hi; ++i) {
      m.add("n", 1);
      m.observe("v", 0.25 * (i + 1));  // exact quarters: fp sums associate
                                       // exactly, so even to_json is equal
    }
  };
  MetricsRegistry a1, a2, total_a;
  fill(a1, 0, 7);
  fill(a2, 7, 20);
  total_a.merge(a1);
  total_a.merge(a2);
  MetricsRegistry b1, b2, total_b;
  fill(b1, 0, 13);
  fill(b2, 13, 20);
  total_b.merge(b1);
  total_b.merge(b2);
  // Counters and bin counts are exact; sums differ only by fp association,
  // and these sample values keep even the sums equal (integer quarters).
  EXPECT_EQ(total_a.counter("n"), total_b.counter("n"));
  EXPECT_EQ(total_a.histogram("v")->bins(), total_b.histogram("v")->bins());
  EXPECT_EQ(total_a.to_json(), total_b.to_json());
}

TEST(MetricsRegistry, JsonShape) {
  MetricsRegistry m;
  m.add("b.count", 2);
  m.add("a.count", 1);
  m.observe("h", 1.0);
  const std::string json = m.to_json();
  // Name-sorted counters, only populated bins listed.
  EXPECT_NE(json.find("\"a.count\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"b.count\": 2"), std::string::npos);
  EXPECT_LT(json.find("\"a.count\""), json.find("\"b.count\""));
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"count\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"bins\": [{\"lo\": 1, \"count\": 1}]"),
            std::string::npos);

  MetricsRegistry empty;
  EXPECT_EQ(empty.to_json(), "{\n \"counters\": {},\n \"histograms\": {}\n}\n");
}

TEST(MetricsRegistry, AbsorbRunCounters) {
  util::RunCounters counters;
  counters.newton_brent_fallbacks = 3;
  counters.fit_fallbacks = 1;
  MetricsRegistry m;
  absorb_run_counters(m, counters);
  EXPECT_EQ(m.counter("run.newton_brent_fallbacks"), 3);
  EXPECT_EQ(m.counter("run.fit_fallbacks"), 1);
  // Zero-valued counters still exist in the export ("no fallbacks" must be
  // distinguishable from "not wired").
  EXPECT_NE(m.to_json().find("\"run.scan_fallbacks\": 0"), std::string::npos);
  absorb_run_counters(m, counters);
  EXPECT_EQ(m.counter("run.newton_brent_fallbacks"), 6);
}

TEST(MetricsRegistry, WriteJsonStream) {
  MetricsRegistry m;
  m.add("x");
  std::ostringstream os;
  m.write_json(os);
  EXPECT_EQ(os.str(), m.to_json());
}

}  // namespace
}  // namespace charlie::obs
