// Observability locks for the parallel engines: the metrics a run exports
// must be bit-identical at any thread count (run-order reduction), capture
// and per-(shard, window) accounting must agree with the aggregates, and
// armed tracing must see exactly the spans the execution structure
// predicts. Suites are named Batch runner/ShardedCircuit so the TSan suite
// regex (tools/run_tsan_tests.sh) exercises armed tracing under both pools.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "cell/cell_library.hpp"
#include "cell/netlist.hpp"
#include "core/mode_tables.hpp"
#include "obs/trace_recorder.hpp"
#include "sim/batch_runner.hpp"
#include "sim/circuit_builder.hpp"
#include "sim/hybrid_nor_channel.hpp"
#include "sim/sharded_circuit.hpp"
#include "util/rng.hpp"
#include "waveform/generator.hpp"

namespace charlie::sim {
namespace {

// Every test that arms the recorder disarms it on exit, even on failure.
class ObsGuard {
 public:
  ~ObsGuard() { obs::TraceRecorder::stop(); }
};

BatchConfig small_config() {
  BatchConfig config;
  config.trace.mu = 150e-12;
  config.trace.sigma = 60e-12;
  config.trace.n_transitions = 60;
  config.n_runs = 8;
  config.base_seed = 42;
  config.histogram_bins = 16;
  return config;
}

CircuitFactory nor_factory() {
  const auto tables =
      core::NorModeTables::make(core::NorParams::paper_table1());
  return [tables] {
    auto circuit = std::make_unique<Circuit>();
    const auto a = circuit->add_input("a");
    const auto b = circuit->add_input("b");
    circuit->add_nor2_mis("out", a, b,
                          std::make_unique<HybridNorChannel>(tables));
    return circuit;
  };
}

int count_spans(const obs::TraceRecorder::Snapshot& snapshot,
                const std::string& name) {
  int n = 0;
  for (const obs::TraceEvent& event : snapshot.events) {
    if (event.name != nullptr && name == event.name) ++n;
  }
  return n;
}

TEST(BatchRunnerObservability, MetricsCoverTheBatch) {
  BatchRunner runner(nor_factory(), "out", small_config());
  const auto result = runner.run();
  EXPECT_EQ(result.metrics.counter("batch.runs"),
            static_cast<long long>(result.n_runs));
  EXPECT_EQ(result.metrics.counter("batch.runs_failed"), 0);
  EXPECT_EQ(result.metrics.counter("batch.events"), result.total_events);
  ASSERT_NE(result.metrics.histogram("sim.events_per_run"), nullptr);
  EXPECT_EQ(result.metrics.histogram("sim.events_per_run")->count(),
            result.n_runs);
  EXPECT_DOUBLE_EQ(result.metrics.histogram("sim.events_per_run")->sum(),
                   static_cast<double>(result.total_events));
  // Peak event-heap depth was observed once per run and is a real depth.
  ASSERT_NE(result.metrics.histogram("sim.max_heap_depth"), nullptr);
  EXPECT_EQ(result.metrics.histogram("sim.max_heap_depth")->count(),
            result.n_runs);
  EXPECT_GE(result.metrics.histogram("sim.max_heap_depth")->min(), 1.0);
  // Guard counters exist even when everything stayed on the fast path.
  EXPECT_NE(result.metrics.to_json().find("run.newton_brent_fallbacks"),
            std::string::npos);
}

TEST(BatchRunnerObservability, MetricsBitIdenticalAcrossThreadCounts) {
  auto metrics_with = [&](std::size_t n_threads) {
    BatchConfig config = small_config();
    config.n_threads = n_threads;
    BatchRunner runner(nor_factory(), "out", config);
    return runner.run().metrics.to_json();
  };
  const std::string one = metrics_with(1);
  EXPECT_EQ(metrics_with(2), one);
  EXPECT_EQ(metrics_with(4), one);
}

TEST(BatchRunnerObservability, CaptureRunExportsThatRunsTraces) {
  BatchConfig config = small_config();
  config.capture_run = 2;
  config.n_threads = 2;
  BatchRunner runner(nor_factory(), "out", config);
  const auto result = runner.run();
  // Inputs first (declaration order), then the observed net.
  ASSERT_EQ(result.captured.size(), 3u);
  EXPECT_EQ(result.captured[0].net, "a");
  EXPECT_EQ(result.captured[1].net, "b");
  EXPECT_EQ(result.captured[2].net, "out");
  for (const auto& captured : result.captured) {
    EXPECT_GT(captured.trace.n_transitions(), 0u) << captured.net;
  }
  // The captured run is picked by seed offset, so the traces are the same
  // whichever worker executed it.
  BatchConfig single = config;
  single.n_threads = 1;
  const auto reference = BatchRunner(nor_factory(), "out", single).run();
  ASSERT_EQ(reference.captured.size(), result.captured.size());
  for (std::size_t i = 0; i < result.captured.size(); ++i) {
    EXPECT_EQ(result.captured[i].trace.initial_value(),
              reference.captured[i].trace.initial_value());
    EXPECT_EQ(result.captured[i].trace.transitions(),
              reference.captured[i].trace.transitions());
  }
  // Out-of-range index captures nothing.
  BatchConfig off = config;
  off.capture_run = 99;
  EXPECT_TRUE(BatchRunner(nor_factory(), "out", off).run().captured.empty());
}

TEST(BatchRunnerObservability, ArmedTracingSeesEveryRun) {
  ObsGuard guard;
  BatchConfig config = small_config();
  config.n_threads = 2;
  BatchRunner runner(nor_factory(), "out", config);
  obs::TraceRecorder::start();
  const auto result = runner.run();
  obs::TraceRecorder::stop();
  const auto snapshot = obs::TraceRecorder::collect();
  EXPECT_EQ(snapshot.n_dropped, 0u);
  EXPECT_EQ(count_spans(snapshot, "batch.run"),
            static_cast<int>(result.n_runs));
  // Each run advances its session at least once.
  EXPECT_GE(count_spans(snapshot, "sim.advance"),
            static_cast<int>(result.n_runs));
  // The batch.run span carries the run index and its event count.
  long long events_from_spans = 0;
  for (const obs::TraceEvent& event : snapshot.events) {
    if (event.name != nullptr && std::string(event.name) == "batch.run") {
      events_from_spans += event.v1;
    }
  }
  EXPECT_EQ(events_from_spans, result.total_events);
}

const cell::NetlistDesc& c432() {
  static const cell::NetlistDesc desc = cell::read_netlist_file(
      CHARLIE_SOURCE_DIR "/examples/netlists/c432.net");
  return desc;
}

CircuitBuilder builder() {
  static const auto library =
      std::make_shared<const cell::CellLibrary>(cell::CellLibrary::reference());
  return CircuitBuilder(library);
}

std::vector<waveform::DigitalTrace> stimuli_for(std::size_t n_inputs) {
  waveform::TraceConfig config;
  config.mu = 150e-12;
  config.sigma = 60e-12;
  config.n_transitions = 40;
  util::Rng rng(2022);
  return waveform::generate_traces(config, n_inputs, rng);
}

double t_end_for(const std::vector<waveform::DigitalTrace>& stimuli) {
  double t_last = 0.0;
  for (const auto& trace : stimuli) {
    if (!trace.empty()) t_last = std::max(t_last, trace.transitions().back());
  }
  return t_last + 2e-9;
}

TEST(ShardedCircuitObservability, ShardWindowEventsAccountForEverything) {
  const std::size_t n_shards = 3;
  const auto sharded = builder().build_sharded(c432(), n_shards);
  const auto stimuli = stimuli_for(c432().inputs.size());
  const auto result = sharded->simulate(stimuli, 0.0, t_end_for(stimuli));
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result.shard_window_events.size(), n_shards);
  long total = 0;
  for (const auto& per_window : result.shard_window_events) {
    EXPECT_EQ(per_window.size(), result.n_windows);
    for (const long n : per_window) total += n;
  }
  // Per-task deltas count what each shard session processed, which
  // includes boundary injections and primary inputs fanned out to several
  // shards; the global n_events de-duplicates those, so the task view is
  // an upper bound that exceeds it by at least the boundary traffic.
  const long long boundary =
      result.metrics.counter("shard.boundary_transitions");
  EXPECT_GT(boundary, 0);
  EXPECT_GE(total, result.n_events + boundary);
  // c432 is busy enough that the partition is not perfectly balanced but
  // no shard can exceed doing everything.
  EXPECT_GE(result.load_imbalance(), 1.0);
  EXPECT_LE(result.load_imbalance(), static_cast<double>(n_shards));
  // Metrics mirror the same accounting.
  EXPECT_EQ(result.metrics.counter("shard.count"),
            static_cast<long long>(n_shards));
  ASSERT_NE(result.metrics.histogram("shard.window_events"), nullptr);
  EXPECT_EQ(result.metrics.histogram("shard.window_events")->count(),
            n_shards * result.n_windows);
  ASSERT_NE(result.metrics.histogram("shard.events"), nullptr);
  EXPECT_EQ(result.metrics.histogram("shard.events")->count(), n_shards);
  EXPECT_DOUBLE_EQ(result.metrics.histogram("shard.events")->sum(),
                   static_cast<double>(total));
}

TEST(ShardedCircuitObservability, SingleShardTaskViewMatchesGlobalCount) {
  // With one shard there is no boundary traffic and no input fanout
  // duplication: the task view and the global count must agree exactly.
  const auto sharded = builder().build_sharded(c432(), 1);
  const auto stimuli = stimuli_for(c432().inputs.size());
  const auto result = sharded->simulate(stimuli, 0.0, t_end_for(stimuli));
  ASSERT_TRUE(result.ok());
  long total = 0;
  for (const auto& per_window : result.shard_window_events) {
    for (const long n : per_window) total += n;
  }
  EXPECT_EQ(total, result.n_events);
  EXPECT_EQ(result.metrics.counter("shard.boundary_transitions"), 0);
  EXPECT_DOUBLE_EQ(result.load_imbalance(), 1.0);
}

TEST(ShardedCircuitObservability, MetricsBitIdenticalAcrossThreadCounts) {
  const auto sharded = builder().build_sharded(c432(), 4);
  const auto stimuli = stimuli_for(c432().inputs.size());
  const double t_end = t_end_for(stimuli);
  auto metrics_with = [&](std::size_t n_threads) {
    ShardedSimConfig config;
    config.n_threads = n_threads;
    return sharded->simulate(stimuli, 0.0, t_end, config).metrics.to_json();
  };
  const std::string one = metrics_with(1);
  EXPECT_EQ(metrics_with(2), one);
  EXPECT_EQ(metrics_with(4), one);
}

TEST(ShardedCircuitObservability, ArmedTracingSeesEveryWavefrontTask) {
  ObsGuard guard;
  const std::size_t n_shards = 3;
  const auto sharded = builder().build_sharded(c432(), n_shards);
  const auto stimuli = stimuli_for(c432().inputs.size());
  ShardedSimConfig config;
  config.n_threads = 2;
  obs::TraceRecorder::start();
  const auto result = sharded->simulate(stimuli, 0.0, t_end_for(stimuli),
                                        config);
  obs::TraceRecorder::stop();
  ASSERT_TRUE(result.ok());
  const auto snapshot = obs::TraceRecorder::collect();
  EXPECT_EQ(snapshot.n_dropped, 0u);
  // One shard.task span per (shard, window) wavefront task.
  EXPECT_EQ(count_spans(snapshot, "shard.task"),
            static_cast<int>(n_shards * result.n_windows));
  // Tracing is pure observation: the run still matches the untraced one.
  const auto untraced = sharded->simulate(stimuli, 0.0, t_end_for(stimuli),
                                          config);
  EXPECT_EQ(result.n_events, untraced.n_events);
  EXPECT_EQ(result.metrics.to_json(), untraced.metrics.to_json());
}

}  // namespace
}  // namespace charlie::sim
