#include <gtest/gtest.h>

#include "sim/inertial.hpp"
#include "sim/pure_delay.hpp"
#include "util/error.hpp"

namespace charlie::sim {
namespace {

TEST(PureDelay, DelaysEveryTransition) {
  PureDelayChannel ch(10e-12);
  ch.initialize(0.0, false);
  EXPECT_FALSE(ch.initial_output());
  ch.on_input(100e-12, true);
  auto p = ch.pending();
  ASSERT_TRUE(p.has_value());
  EXPECT_DOUBLE_EQ(p->t, 110e-12);
  EXPECT_TRUE(p->value);
  // A second transition queues behind the first.
  ch.on_input(105e-12, false);
  p = ch.pending();
  ASSERT_TRUE(p.has_value());
  EXPECT_DOUBLE_EQ(p->t, 110e-12);  // still the first
  ch.on_fire(*p);
  p = ch.pending();
  ASSERT_TRUE(p.has_value());
  EXPECT_DOUBLE_EQ(p->t, 115e-12);
  EXPECT_FALSE(p->value);
}

TEST(PureDelay, ShortPulsePropagatesUnchanged) {
  // The defining (unfaithful) property of pure delays: even a 1 fs pulse
  // survives.
  PureDelayChannel ch(50e-12);
  ch.initialize(0.0, false);
  ch.on_input(1e-9, true);
  ch.on_input(1e-9 + 1e-15, false);
  int events = 0;
  while (auto p = ch.pending()) {
    ch.on_fire(*p);
    ++events;
  }
  EXPECT_EQ(events, 2);
}

TEST(PureDelay, RejectsNegativeDelay) {
  EXPECT_THROW(PureDelayChannel(-1e-12), AssertionError);
}

TEST(Inertial, BasicDelaysPerDirection) {
  InertialChannel ch(30e-12, 20e-12);
  ch.initialize(0.0, false);
  ch.on_input(100e-12, true);
  auto p = ch.pending();
  ASSERT_TRUE(p.has_value());
  EXPECT_DOUBLE_EQ(p->t, 130e-12);
  ch.on_fire(*p);
  EXPECT_FALSE(ch.pending().has_value());
  ch.on_input(500e-12, false);
  p = ch.pending();
  ASSERT_TRUE(p.has_value());
  EXPECT_DOUBLE_EQ(p->t, 520e-12);
}

TEST(Inertial, ShortPulseAnnihilates) {
  InertialChannel ch(30e-12, 30e-12);
  ch.initialize(0.0, false);
  ch.on_input(100e-12, true);
  ASSERT_TRUE(ch.pending().has_value());
  // The falling edge arrives while the rising output is still pending:
  // both are swallowed.
  ch.on_input(110e-12, false);
  EXPECT_FALSE(ch.pending().has_value());
  // A later full-width pulse passes.
  ch.on_input(300e-12, true);
  ASSERT_TRUE(ch.pending().has_value());
}

TEST(Inertial, PulseJustLongerThanDelayPasses) {
  InertialChannel ch(30e-12, 30e-12);
  ch.initialize(0.0, false);
  ch.on_input(100e-12, true);
  auto p = ch.pending();
  ch.on_fire(*p);  // fires at 130 ps
  ch.on_input(131e-12, false);
  p = ch.pending();
  ASSERT_TRUE(p.has_value());
  EXPECT_DOUBLE_EQ(p->t, 161e-12);
}

TEST(Inertial, InitializeResetsState) {
  InertialChannel ch(10e-12, 10e-12);
  ch.initialize(0.0, true);
  EXPECT_TRUE(ch.initial_output());
  ch.on_input(50e-12, false);
  ASSERT_TRUE(ch.pending().has_value());
  ch.initialize(0.0, false);
  EXPECT_FALSE(ch.pending().has_value());
  EXPECT_FALSE(ch.initial_output());
}

}  // namespace
}  // namespace charlie::sim
