#include "sim/run_channel.hpp"

#include <gtest/gtest.h>

#include "core/delay_model.hpp"
#include "sim/hybrid_nor_channel.hpp"
#include "sim/nor_models.hpp"

namespace charlie::sim {
namespace {

TEST(RunChannel, SinglePulseThroughInertialNor) {
  SisNorDelays d{50e-12, 40e-12};
  auto gate = make_inertial_nor(d);
  // B stays low; A pulses 1..2 ns: output falls then rises.
  const waveform::DigitalTrace a(false, {1e-9, 2e-9});
  const waveform::DigitalTrace b(false, {});
  const auto out = run_gate_channel(*gate, a, b, 0.0, 3e-9);
  EXPECT_TRUE(out.initial_value());
  ASSERT_EQ(out.n_transitions(), 2u);
  EXPECT_NEAR(out.transitions()[0], 1e-9 + 40e-12, 1e-15);
  EXPECT_NEAR(out.transitions()[1], 2e-9 + 50e-12, 1e-15);
}

TEST(RunChannel, OtherInputMasksTransitions) {
  SisNorDelays d{50e-12, 40e-12};
  auto gate = make_inertial_nor(d);
  // B high the whole time: output pinned low; A's activity is invisible.
  const waveform::DigitalTrace a(false, {1e-9, 2e-9});
  const waveform::DigitalTrace b(true, {});
  const auto out = run_gate_channel(*gate, a, b, 0.0, 3e-9);
  EXPECT_FALSE(out.initial_value());
  EXPECT_EQ(out.n_transitions(), 0u);
}

TEST(RunChannel, OutputAlternates) {
  const auto params = core::NorParams::paper_table1();
  HybridNorChannel ch(params);
  // Dense random-ish activity on both inputs.
  const waveform::DigitalTrace a(false,
                                 {1e-9, 1.2e-9, 1.5e-9, 2.0e-9, 2.05e-9});
  const waveform::DigitalTrace b(false, {1.1e-9, 1.6e-9, 2.02e-9});
  const auto out = run_gate_channel(ch, a, b, 0.0, 3e-9);
  for (std::size_t i = 1; i < out.n_transitions(); ++i) {
    EXPECT_NE(out.is_rising(i), out.is_rising(i - 1));
    EXPECT_LT(out.transitions()[i - 1], out.transitions()[i]);
  }
}

TEST(RunChannel, EventsAfterWindowDiscarded) {
  SisNorDelays d{50e-12, 40e-12};
  auto gate = make_inertial_nor(d);
  const waveform::DigitalTrace a(false, {1e-9});
  const waveform::DigitalTrace b(false, {});
  // Window ends before the output delay elapses.
  const auto out = run_gate_channel(*gate, a, b, 0.0, 1.02e-9);
  EXPECT_EQ(out.n_transitions(), 0u);
}

TEST(RunChannel, HybridMatchesDelayModelEndToEnd) {
  const auto params = core::NorParams::paper_table1();
  const core::NorDelayModel model(params);
  HybridNorChannel ch(params);
  const double delta = 15e-12;
  const waveform::DigitalTrace a(false, {1e-9});
  const waveform::DigitalTrace b(false, {1e-9 + delta});
  const auto out = run_gate_channel(ch, a, b, 0.0, 2e-9);
  ASSERT_EQ(out.n_transitions(), 1u);
  EXPECT_NEAR(out.transitions()[0] - 1e-9,
              model.falling_delay(delta).delay, 1e-14);
}

TEST(RunChannel, InitialValuesRespected) {
  SisNorDelays d{50e-12, 40e-12};
  auto gate = make_inertial_nor(d);
  const waveform::DigitalTrace a(true, {1e-9});   // A falls at 1 ns
  const waveform::DigitalTrace b(false, {});
  const auto out = run_gate_channel(*gate, a, b, 0.0, 2e-9);
  EXPECT_FALSE(out.initial_value());
  ASSERT_EQ(out.n_transitions(), 1u);
  EXPECT_TRUE(out.is_rising(0));
  EXPECT_NEAR(out.transitions()[0], 1e-9 + 50e-12, 1e-15);
}

}  // namespace
}  // namespace charlie::sim
