#include "sim/run_guard.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>

#include "core/mode_tables.hpp"
#include "sim/circuit.hpp"
#include "sim/hybrid_nor_channel.hpp"
#include "sim/pure_delay.hpp"
#include "sim/sim_session.hpp"
#include "util/fault_injection.hpp"

namespace charlie::sim {
namespace {

// Inverter chain: every stimulus edge ripples through `depth` gates, so a
// run's event count is an exact function of the stimulus.
std::unique_ptr<Circuit> chain_circuit(int depth) {
  auto c = std::make_unique<Circuit>();
  auto prev = c->add_input("in");
  for (int i = 0; i < depth; ++i) {
    prev = c->add_gate(GateKind::kInv, "n" + std::to_string(i), {prev},
                       std::make_unique<PureDelayChannel>(5e-12));
  }
  return c;
}

waveform::DigitalTrace edges(int n) {
  waveform::DigitalTrace stim(false, {});
  for (int i = 0; i < n; ++i) {
    stim.append_transition(1e-9 * static_cast<double>(i + 1));
  }
  return stim;
}

TEST(RunStatus, ToStringCoversEveryStatus) {
  EXPECT_STREQ(to_string(RunStatus::kOk), "ok");
  EXPECT_STREQ(to_string(RunStatus::kBudgetExhausted), "budget_exhausted");
  EXPECT_STREQ(to_string(RunStatus::kDeadlineExceeded), "deadline_exceeded");
  EXPECT_STREQ(to_string(RunStatus::kCancelled), "cancelled");
  EXPECT_STREQ(to_string(RunStatus::kFailed), "failed");
}

TEST(RunGuard, UnbudgetedRunReportsOk) {
  auto c = chain_circuit(4);
  const auto result = c->simulate({edges(8)}, 0.0, 1e-7);
  EXPECT_EQ(result.status, RunStatus::kOk);
  EXPECT_TRUE(result.ok());
  EXPECT_EQ(result.diagnostics.status, RunStatus::kOk);
  EXPECT_EQ(result.diagnostics.n_events, result.n_events);
  EXPECT_TRUE(result.diagnostics.error.empty());
  EXPECT_FALSE(result.diagnostics.summary().empty());
}

TEST(RunGuard, DisabledBudgetIsBitIdenticalToPlainSimulate) {
  auto c1 = chain_circuit(6);
  auto c2 = chain_circuit(6);
  const auto plain = c1->simulate({edges(10)}, 0.0, 1e-7);
  const auto budgeted = c2->simulate({edges(10)}, 0.0, 1e-7, RunBudget{});
  ASSERT_EQ(budgeted.status, RunStatus::kOk);
  ASSERT_EQ(plain.n_events, budgeted.n_events);
  ASSERT_EQ(plain.traces.size(), budgeted.traces.size());
  for (std::size_t net = 0; net < plain.traces.size(); ++net) {
    const auto& a = plain.traces[net];
    const auto& b = budgeted.traces[net];
    ASSERT_EQ(a.n_transitions(), b.n_transitions());
    for (std::size_t k = 0; k < a.n_transitions(); ++k) {
      EXPECT_EQ(a.transitions()[k], b.transitions()[k]);
    }
  }
}

TEST(RunGuard, EventBudgetStopsAfterExactlyMaxEvents) {
  auto full_circuit = chain_circuit(6);
  const auto full = full_circuit->simulate({edges(10)}, 0.0, 1e-7);
  ASSERT_GT(full.n_events, 20);

  RunBudget budget;
  budget.max_events = 20;
  auto c = chain_circuit(6);
  const auto partial = c->simulate({edges(10)}, 0.0, 1e-7, budget);
  EXPECT_EQ(partial.status, RunStatus::kBudgetExhausted);
  EXPECT_FALSE(partial.ok());
  EXPECT_EQ(partial.n_events, 20);
  EXPECT_EQ(partial.diagnostics.n_events, 20);
  // The partial traces are a prefix of the full run: deterministic cut.
  long partial_transitions = 0;
  for (std::size_t net = 0; net < partial.traces.size(); ++net) {
    const auto& p = partial.traces[net];
    const auto& f = full.traces[net];
    ASSERT_LE(p.n_transitions(), f.n_transitions());
    partial_transitions += static_cast<long>(p.n_transitions());
    for (std::size_t k = 0; k < p.n_transitions(); ++k) {
      EXPECT_EQ(p.transitions()[k], f.transitions()[k]);
    }
  }
  EXPECT_GT(partial_transitions, 0);
  // The reached horizon is where processing stopped, not the requested end.
  EXPECT_LT(partial.diagnostics.t_horizon, 1e-7);
}

TEST(RunGuard, EventBudgetCutIsReproducible) {
  RunBudget budget;
  budget.max_events = 17;
  auto c1 = chain_circuit(5);
  auto c2 = chain_circuit(5);
  const auto a = c1->simulate({edges(10)}, 0.0, 1e-7, budget);
  const auto b = c2->simulate({edges(10)}, 0.0, 1e-7, budget);
  ASSERT_EQ(a.status, RunStatus::kBudgetExhausted);
  ASSERT_EQ(b.status, RunStatus::kBudgetExhausted);
  ASSERT_EQ(a.traces.size(), b.traces.size());
  for (std::size_t net = 0; net < a.traces.size(); ++net) {
    ASSERT_EQ(a.traces[net].n_transitions(), b.traces[net].n_transitions());
  }
}

TEST(RunGuard, DeadlineTripsOnLongRuns) {
  // A deadline far in the past (poll every event) trips on the first poll;
  // the run still returns a structured result instead of hanging.
  RunBudget budget;
  budget.max_wall_seconds = 1e-12;
  budget.check_interval = 1;
  auto c = chain_circuit(6);
  const auto result = c->simulate({edges(10)}, 0.0, 1e-7, budget);
  EXPECT_EQ(result.status, RunStatus::kDeadlineExceeded);
  EXPECT_LT(result.n_events, 70);
}

TEST(RunGuard, PresetCancellationStopsTheRun) {
  std::atomic<bool> cancel{true};
  RunBudget budget;
  budget.cancel = &cancel;
  budget.check_interval = 1;
  auto c = chain_circuit(6);
  const auto result = c->simulate({edges(10)}, 0.0, 1e-7, budget);
  EXPECT_EQ(result.status, RunStatus::kCancelled);
}

TEST(RunGuard, InjectedSolverFaultBecomesStructuredFailure) {
  util::FaultInjector::Scope scope;
  util::FaultInjector::reset_local_hits();
  util::FaultInjector::arm(
      "crossing.solve",
      {util::FaultInjector::Action::kConvergenceError, 0, -1});

  const auto tables =
      core::NorModeTables::make(core::NorParams::paper_table1());
  Circuit c;
  const auto a = c.add_input("a");
  const auto b = c.add_input("b");
  c.add_nor2_mis("out", a, b, std::make_unique<HybridNorChannel>(tables));
  const waveform::DigitalTrace stim_a(false, {1e-9});
  const waveform::DigitalTrace stim_b(false, {});

  // Budgeted entry point: the injected ConvergenceError is captured, not
  // thrown through the engine.
  const auto result = c.simulate({stim_a, stim_b}, 0.0, 1e-8, RunBudget{});
  EXPECT_EQ(result.status, RunStatus::kFailed);
  EXPECT_NE(result.diagnostics.error.find("injected fault"),
            std::string::npos)
      << result.diagnostics.error;
  EXPECT_GT(util::FaultInjector::fires("crossing.solve"), 0);
}

TEST(RunGuard, ForcedNewtonFallbackIsCountedInDiagnostics) {
  util::FaultInjector::Scope scope;
  util::FaultInjector::reset_local_hits();
  util::FaultInjector::arm(
      "crossing.newton", {util::FaultInjector::Action::kForceBranch, 0, -1});

  const auto tables =
      core::NorModeTables::make(core::NorParams::paper_table1());
  Circuit c;
  const auto a = c.add_input("a");
  const auto b = c.add_input("b");
  const auto out =
      c.add_nor2_mis("out", a, b, std::make_unique<HybridNorChannel>(tables));
  const waveform::DigitalTrace stim_a(false, {1e-9});
  const waveform::DigitalTrace stim_b(false, {});

  const auto result = c.simulate({stim_a, stim_b}, 0.0, 1e-8, RunBudget{});
  ASSERT_EQ(result.status, RunStatus::kOk);
  EXPECT_GT(result.trace(out).n_transitions(), 0u);
  // Every crossing solve went through the Brent fallback and the per-run
  // counter diff picked it up.
  EXPECT_GT(result.diagnostics.counters.newton_brent_fallbacks, 0L);
  EXPECT_TRUE(result.diagnostics.counters.any());
}

TEST(RunGuard, InjectedNanStateBecomesStructuredFailure) {
  util::FaultInjector::Scope scope;
  util::FaultInjector::reset_local_hits();
  util::FaultInjector::arm(
      "hybrid_channel.state", {util::FaultInjector::Action::kNanValue, 0, -1});

  const auto tables =
      core::NorModeTables::make(core::NorParams::paper_table1());
  Circuit c;
  const auto a = c.add_input("a");
  const auto b = c.add_input("b");
  c.add_nor2_mis("out", a, b, std::make_unique<HybridNorChannel>(tables));
  const waveform::DigitalTrace stim_a(false, {1e-9});
  const waveform::DigitalTrace stim_b(false, {});

  const auto result = c.simulate({stim_a, stim_b}, 0.0, 1e-8, RunBudget{});
  EXPECT_EQ(result.status, RunStatus::kFailed);
  EXPECT_NE(result.diagnostics.error.find("non-finite"), std::string::npos)
      << result.diagnostics.error;
  EXPECT_GT(result.diagnostics.counters.nonfinite_guard_trips, 0L);
}

TEST(RunGuard, SessionStatusIsStickyAcrossAdvances) {
  RunBudget budget;
  budget.max_events = 5;
  auto c = chain_circuit(6);
  const std::vector<waveform::DigitalTrace> stimuli{edges(10)};
  SimSession session(*c, stimuli, 0.0, budget);
  session.advance(5e-9);
  EXPECT_EQ(session.status(), RunStatus::kBudgetExhausted);
  const long events_at_trip =
      session.n_stimulus_events() + session.n_gate_events();
  // Further windowed advances must not resurrect the run.
  session.advance(1e-7);
  EXPECT_EQ(session.status(), RunStatus::kBudgetExhausted);
  EXPECT_EQ(session.n_stimulus_events() + session.n_gate_events(),
            events_at_trip);
}

}  // namespace
}  // namespace charlie::sim
