// ShardedCircuit regression lock: partitioning a real netlist across
// shards and simulating with the conservative windowed wavefront must be
// bit-identical to the monolithic single-threaded engine -- for every
// shard count, thread count, and window quantum. Runs on the repo's
// c432-class netlist (examples/netlists/c432.net, ~150 gates, all nine
// cells) so the lock covers SIS, hybrid MIS, and mixed fanout structure.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "cell/cell_library.hpp"
#include "cell/netlist.hpp"
#include "sim/circuit_builder.hpp"
#include "sim/sharded_circuit.hpp"
#include "util/error.hpp"
#include "util/fault_injection.hpp"
#include "util/rng.hpp"
#include "waveform/generator.hpp"

namespace charlie {
namespace {

const cell::NetlistDesc& c432() {
  static const cell::NetlistDesc desc = cell::read_netlist_file(
      CHARLIE_SOURCE_DIR "/examples/netlists/c432.net");
  return desc;
}

sim::CircuitBuilder builder() {
  static const auto library =
      std::make_shared<const cell::CellLibrary>(cell::CellLibrary::reference());
  return sim::CircuitBuilder(library);
}

std::vector<waveform::DigitalTrace> stimuli_for(std::size_t n_inputs,
                                                std::uint64_t seed) {
  waveform::TraceConfig config;
  config.mu = 150e-12;
  config.sigma = 60e-12;
  config.n_transitions = 40;
  util::Rng rng(seed);
  return waveform::generate_traces(config, n_inputs, rng);
}

double t_end_for(const std::vector<waveform::DigitalTrace>& stimuli) {
  double t_last = 0.0;
  for (const auto& trace : stimuli) {
    if (!trace.empty()) t_last = std::max(t_last, trace.transitions().back());
  }
  return t_last + 2e-9;  // settle tail
}

// Every net the monolithic circuit knows, by name (inputs included).
std::vector<std::string> all_nets(const cell::NetlistDesc& desc) {
  std::vector<std::string> nets(desc.inputs.begin(), desc.inputs.end());
  for (const auto& inst : desc.instances) nets.push_back(inst.output);
  for (const auto& wire : desc.wires) nets.push_back(wire.output);
  return nets;
}

void expect_bit_identical(const sim::Circuit::SimResult& mono,
                          sim::Circuit& mono_circuit,
                          const sim::ShardedCircuit::Result& sharded,
                          const cell::NetlistDesc& desc,
                          const std::string& label) {
  EXPECT_EQ(mono.n_events, sharded.n_events) << label;
  for (const std::string& net : all_nets(desc)) {
    const auto& expected = mono.trace(mono_circuit.find_net(net));
    const auto& actual = sharded.trace(net);
    ASSERT_EQ(expected.initial_value(), actual.initial_value())
        << label << " net " << net;
    ASSERT_EQ(expected.transitions(), actual.transitions())
        << label << " net " << net;
  }
}

TEST(ShardedCircuit, PartitionCoversEveryGateAcyclically) {
  const auto b = builder();
  const auto mono = b.build(c432());
  for (const std::size_t n_shards : {1u, 2u, 4u, 7u}) {
    const auto sharded = b.build_sharded(c432(), n_shards);
    EXPECT_EQ(sharded->n_shards(), n_shards);
    EXPECT_EQ(sharded->n_gates(), mono->n_gates());
    EXPECT_EQ(sharded->n_inputs(), c432().inputs.size());
    if (n_shards > 1) {
      EXPECT_GT(sharded->n_boundary_edges(), 0u);
    }
  }
}

TEST(ShardedCircuit, ShardCountIsClampedToElementCount) {
  const auto sharded = builder().build_sharded(c432(), 100000);
  EXPECT_LE(sharded->n_shards(),
            c432().instances.size() + c432().wires.size());
  EXPECT_GE(sharded->n_shards(), 2u);
}

TEST(ShardedCircuit, BitIdenticalToMonolithicAcrossShardAndThreadCounts) {
  const auto b = builder();
  const auto mono_circuit = b.build(c432());
  const auto stimuli = stimuli_for(mono_circuit->n_inputs(), 7);
  const double t_end = t_end_for(stimuli);
  const auto mono = mono_circuit->simulate(stimuli, 0.0, t_end);

  for (const std::size_t n_shards : {1u, 2u, 4u}) {
    auto sharded = b.build_sharded(c432(), n_shards);
    for (const std::size_t n_threads : {1u, 2u, 4u}) {
      sim::ShardedSimConfig config;
      config.n_threads = n_threads;
      const auto result = sharded->simulate(stimuli, 0.0, t_end, config);
      expect_bit_identical(mono, *mono_circuit, result, c432(),
                           "shards=" + std::to_string(n_shards) +
                               " threads=" + std::to_string(n_threads));
    }
  }
}

TEST(ShardedCircuit, BitIdenticalForAnyWindowQuantum) {
  const auto b = builder();
  const auto mono_circuit = b.build(c432());
  const auto stimuli = stimuli_for(mono_circuit->n_inputs(), 11);
  const double t_end = t_end_for(stimuli);
  const auto mono = mono_circuit->simulate(stimuli, 0.0, t_end);

  auto sharded = b.build_sharded(c432(), 4);
  // From one giant window (pure sequential shard sweep) down to quanta far
  // below the gate delays (every boundary event crosses windows).
  for (const double window : {t_end * 2.0, t_end / 3.0, 1e-10, 7e-12}) {
    sim::ShardedSimConfig config;
    config.window = window;
    config.n_threads = 2;
    const auto result = sharded->simulate(stimuli, 0.0, t_end, config);
    EXPECT_GE(result.n_windows, 1u);
    expect_bit_identical(mono, *mono_circuit, result, c432(),
                         "window=" + std::to_string(window));
  }
}

TEST(ShardedCircuit, RepeatedSimulationsOnOneInstanceAgree) {
  // The pool and shard circuits persist across simulate() calls; a second
  // call must not see stale channel or exchange state.
  const auto b = builder();
  auto sharded = b.build_sharded(c432(), 3);
  const auto stimuli = stimuli_for(sharded->n_inputs(), 21);
  const double t_end = t_end_for(stimuli);
  const auto first = sharded->simulate(stimuli, 0.0, t_end);
  const auto second = sharded->simulate(stimuli, 0.0, t_end);
  EXPECT_EQ(first.n_events, second.n_events);
  for (const std::string& net : all_nets(c432())) {
    EXPECT_EQ(first.trace(net).transitions(), second.trace(net).transitions())
        << net;
  }
}

TEST(ShardedCircuit, UnknownNetThrows) {
  const auto b = builder();
  auto sharded = b.build_sharded(c432(), 2);
  const auto stimuli = stimuli_for(sharded->n_inputs(), 3);
  const auto result = sharded->simulate(stimuli, 0.0, t_end_for(stimuli));
  EXPECT_THROW(result.trace("no_such_net"), ConfigError);
}

TEST(ShardedCircuit, UnbudgetedRunReportsOkDiagnostics) {
  const auto b = builder();
  auto sharded = b.build_sharded(c432(), 3);
  const auto stimuli = stimuli_for(sharded->n_inputs(), 13);
  const auto result = sharded->simulate(stimuli, 0.0, t_end_for(stimuli));
  EXPECT_EQ(result.status, sim::RunStatus::kOk);
  EXPECT_TRUE(result.ok());
  EXPECT_EQ(result.diagnostics.status, sim::RunStatus::kOk);
  EXPECT_EQ(result.diagnostics.n_events, result.n_events);
  EXPECT_TRUE(result.diagnostics.error.empty());
}

TEST(ShardedCircuit, EventBudgetTripIsThreadCountInvariant) {
  // The event ceiling is enforced on the coordinating thread at wavefront
  // step granularity, so the trip point (and the partial event count) is a
  // function of the shard/window schedule only, never of thread timing.
  const auto b = builder();
  const auto stimuli = stimuli_for(c432().inputs.size(), 7);
  const double t_end = t_end_for(stimuli);
  auto sharded = b.build_sharded(c432(), 4);
  const long full_events =
      sharded->simulate(stimuli, 0.0, t_end).n_events;
  ASSERT_GT(full_events, 100);

  sim::ShardedSimConfig config;
  config.budget.max_events = full_events / 2;
  long first_partial = -1;
  for (const std::size_t n_threads : {1u, 2u, 4u}) {
    config.n_threads = n_threads;
    const auto result = sharded->simulate(stimuli, 0.0, t_end, config);
    EXPECT_EQ(result.status, sim::RunStatus::kBudgetExhausted);
    EXPECT_FALSE(result.ok());
    EXPECT_GT(result.n_events, 0);
    EXPECT_LT(result.n_events, full_events);
    EXPECT_LT(result.diagnostics.t_horizon, t_end);
    if (first_partial < 0) {
      first_partial = result.n_events;
    } else {
      EXPECT_EQ(result.n_events, first_partial) << n_threads << " threads";
    }
  }
}

TEST(ShardedCircuit, PresetCancellationStopsTheWavefront) {
  std::atomic<bool> cancel{true};
  const auto b = builder();
  auto sharded = b.build_sharded(c432(), 3);
  const auto stimuli = stimuli_for(sharded->n_inputs(), 7);
  sim::ShardedSimConfig config;
  config.budget.cancel = &cancel;
  config.budget.check_interval = 1;
  const auto result =
      sharded->simulate(stimuli, 0.0, t_end_for(stimuli), config);
  EXPECT_EQ(result.status, sim::RunStatus::kCancelled);
  EXPECT_FALSE(result.ok());
}

TEST(ShardedCircuit, InjectedShardFaultYieldsStructuredFailure) {
  util::FaultInjector::Scope scope;
  util::FaultInjector::reset_local_hits();

  const auto b = builder();
  const auto mono_circuit = b.build(c432());
  const auto stimuli = stimuli_for(mono_circuit->n_inputs(), 7);
  const double t_end = t_end_for(stimuli);
  const auto mono = mono_circuit->simulate(stimuli, 0.0, t_end);

  auto sharded = b.build_sharded(c432(), 4);
  sim::ShardedSimConfig config;
  config.n_threads = 2;

  // Poison the first hybrid mode switch: the failing shard's session is
  // stamped, the exception reaches the coordinator through the pool, and
  // the whole run reports kFailed instead of throwing or hanging.
  util::FaultInjector::arm(
      "hybrid_channel.state", {util::FaultInjector::Action::kNanValue, 0, -1});
  const auto faulted = sharded->simulate(stimuli, 0.0, t_end, config);
  EXPECT_EQ(faulted.status, sim::RunStatus::kFailed);
  EXPECT_FALSE(faulted.ok());
  EXPECT_NE(faulted.diagnostics.error.find("non-finite"), std::string::npos)
      << faulted.diagnostics.error;
  EXPECT_LE(faulted.diagnostics.t_horizon, t_end);

  // The instance (pool, shard circuits) survives the failure: a disarmed
  // re-simulation is bit-identical to the monolithic engine.
  util::FaultInjector::disarm("hybrid_channel.state");
  const auto clean = sharded->simulate(stimuli, 0.0, t_end, config);
  EXPECT_EQ(clean.status, sim::RunStatus::kOk);
  expect_bit_identical(mono, *mono_circuit, clean, c432(),
                       "recovery after injected shard fault");
}

}  // namespace
}  // namespace charlie
