#include "sim/surface_nor_channel.hpp"

#include <gtest/gtest.h>

#include "core/delay_model.hpp"
#include "sim/hybrid_nor_channel.hpp"
#include "sim/run_channel.hpp"

namespace charlie::sim {
namespace {

class SurfaceChannelFixture : public ::testing::Test {
 protected:
  static const core::DelaySurface& surface() {
    static const core::DelaySurface s = core::DelaySurface::build(
        core::NorParams::paper_table1(), 150e-12, 301);
    return s;
  }
  const core::NorDelayModel model_{core::NorParams::paper_table1()};
};

TEST_F(SurfaceChannelFixture, SisFallingDelay) {
  SurfaceNorChannel ch(surface());
  ch.initialize(0.0, {false, false});
  ch.on_input(1e-9, 1, true);  // B rises alone
  const auto p = ch.pending();
  ASSERT_TRUE(p.has_value());
  EXPECT_FALSE(p->value);
  EXPECT_NEAR(p->t - 1e-9, model_.falling_sis_b_first(), 1e-15);
}

TEST_F(SurfaceChannelFixture, MisRescheduleOnSecondRisingInput) {
  // A rises, then B 15 ps later: the pending fall must move up to the
  // MIS-sped-up delay measured from A.
  SurfaceNorChannel ch(surface());
  ch.initialize(0.0, {false, false});
  ch.on_input(1e-9, 0, true);
  const double t_sis = ch.pending()->t;
  ch.on_input(1e-9 + 15e-12, 1, true);
  const auto p = ch.pending();
  ASSERT_TRUE(p.has_value());
  EXPECT_LT(p->t, t_sis);  // Charlie speed-up applied
  EXPECT_NEAR(p->t - 1e-9, model_.falling_delay(15e-12).delay, 0.1e-12);
}

TEST_F(SurfaceChannelFixture, RisingDelayUsesLaterInput) {
  SurfaceNorChannel ch(surface());
  ch.initialize(0.0, {true, true});
  ch.on_input(1e-9, 0, false);                // A falls first
  EXPECT_FALSE(ch.pending().has_value());     // NOR still 0
  ch.on_input(1e-9 + 40e-12, 1, false);       // B falls: output rises
  const auto p = ch.pending();
  ASSERT_TRUE(p.has_value());
  EXPECT_TRUE(p->value);
  EXPECT_NEAR(p->t - (1e-9 + 40e-12),
              model_.rising_delay(40e-12, 0.0).delay, 0.1e-12);
}

TEST_F(SurfaceChannelFixture, GlitchCancellation) {
  SurfaceNorChannel ch(surface());
  ch.initialize(0.0, {false, false});
  ch.on_input(1e-9, 0, true);
  ASSERT_TRUE(ch.pending().has_value());
  ch.on_input(1e-9 + 3e-12, 0, false);  // A returns before the fall fires
  EXPECT_FALSE(ch.pending().has_value());
}

TEST_F(SurfaceChannelFixture, AgreesWithStateChannelOnSparseTraces) {
  // With well-separated transitions the delay-function channel and the
  // state-integrating channel coincide.
  const auto params = core::NorParams::paper_table1();
  const waveform::DigitalTrace a(false, {1e-9, 2e-9, 4e-9});
  const waveform::DigitalTrace b(false, {1.02e-9, 2.5e-9, 4.03e-9});
  SurfaceNorChannel s(surface());
  HybridNorChannel h(params);
  const auto out_s = run_gate_channel(s, a, b, 0.0, 6e-9);
  const auto out_h = run_gate_channel(h, a, b, 0.0, 6e-9);
  ASSERT_EQ(out_s.n_transitions(), out_h.n_transitions());
  for (std::size_t i = 0; i < out_s.n_transitions(); ++i) {
    EXPECT_NEAR(out_s.transitions()[i], out_h.transitions()[i], 0.2e-12)
        << "edge " << i;
  }
}

TEST_F(SurfaceChannelFixture, OutputTraceWellFormedOnDenseTraces) {
  const waveform::DigitalTrace a(false,
                                 {1e-9, 1.05e-9, 1.3e-9, 1.32e-9, 1.6e-9});
  const waveform::DigitalTrace b(false, {1.02e-9, 1.31e-9, 1.7e-9});
  SurfaceNorChannel s(surface());
  const auto out = run_gate_channel(s, a, b, 0.0, 3e-9);
  for (std::size_t i = 1; i < out.n_transitions(); ++i) {
    EXPECT_NE(out.is_rising(i), out.is_rising(i - 1));
    EXPECT_LT(out.transitions()[i - 1], out.transitions()[i]);
  }
}

TEST_F(SurfaceChannelFixture, MaskedInputInvisible) {
  SurfaceNorChannel ch(surface());
  ch.initialize(0.0, {false, true});  // B high: output low
  EXPECT_FALSE(ch.initial_output());
  ch.on_input(1e-9, 0, true);   // A rises while masked
  ch.on_input(2e-9, 0, false);  // and falls again
  EXPECT_FALSE(ch.pending().has_value());
}

}  // namespace
}  // namespace charlie::sim
