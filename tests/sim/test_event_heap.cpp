#include "sim/event_heap.hpp"

#include <gtest/gtest.h>

#include <map>
#include <random>

#include "util/error.hpp"

namespace charlie::sim {
namespace {

TEST(EventHeap, BasicScheduleAndPop) {
  EventHeap h;
  h.reset(4);
  EXPECT_TRUE(h.empty());
  h.schedule(2, 3.0, 0, true);
  h.schedule(0, 1.0, 1, false);
  h.schedule(3, 2.0, 2, true);
  EXPECT_EQ(h.size(), 3u);
  EXPECT_EQ(h.top_slot(), 0u);
  EXPECT_DOUBLE_EQ(h.top().t, 1.0);
  EXPECT_FALSE(h.top().value);
  h.pop();
  EXPECT_EQ(h.top_slot(), 3u);
  h.pop();
  EXPECT_EQ(h.top_slot(), 2u);
  h.pop();
  EXPECT_TRUE(h.empty());
}

TEST(EventHeap, RescheduleMovesInBothDirections) {
  EventHeap h;
  h.reset(3);
  h.schedule(0, 10.0, 0, false);
  h.schedule(1, 20.0, 1, false);
  h.schedule(2, 30.0, 2, false);
  // Decrease-key: slot 2 jumps to the front.
  h.schedule(2, 5.0, 3, true);
  EXPECT_EQ(h.size(), 3u);
  EXPECT_EQ(h.top_slot(), 2u);
  EXPECT_TRUE(h.top().value);
  // Increase-key: slot 2 drops to the back.
  h.schedule(2, 40.0, 4, true);
  EXPECT_EQ(h.top_slot(), 0u);
}

TEST(EventHeap, EqualTimesBreakTiesBySequence) {
  EventHeap h;
  h.reset(3);
  h.schedule(1, 1.0, 7, false);
  h.schedule(0, 1.0, 3, false);
  h.schedule(2, 1.0, 5, false);
  EXPECT_EQ(h.top_slot(), 0u);  // seq 3
  h.pop();
  EXPECT_EQ(h.top_slot(), 2u);  // seq 5
  h.pop();
  EXPECT_EQ(h.top_slot(), 1u);  // seq 7
}

TEST(EventHeap, CancelRemovesAndTolerated) {
  EventHeap h;
  h.reset(4);
  h.schedule(0, 1.0, 0, false);
  h.schedule(1, 2.0, 1, false);
  h.cancel(0);
  EXPECT_EQ(h.size(), 1u);
  EXPECT_FALSE(h.contains(0));
  h.cancel(0);  // no-op
  h.cancel(3);  // never scheduled: no-op
  EXPECT_EQ(h.top_slot(), 1u);
  h.schedule(0, 0.5, 2, true);  // re-insert after cancel
  EXPECT_EQ(h.top_slot(), 0u);
}

TEST(EventHeap, ResetDropsEverything) {
  EventHeap h;
  h.reset(2);
  h.schedule(0, 1.0, 0, false);
  h.reset(2);
  EXPECT_TRUE(h.empty());
  EXPECT_FALSE(h.contains(0));
}

// Differential test: random schedule/cancel/pop against a map-based
// reference ordered by (t, seq).
TEST(EventHeap, RandomizedAgainstReference) {
  constexpr std::size_t kSlots = 29;
  EventHeap h;
  h.reset(kSlots);
  std::map<std::pair<double, long>, std::size_t> reference;
  std::map<std::size_t, std::pair<double, long>> by_slot;
  std::mt19937_64 rng(12345);
  std::uniform_real_distribution<double> time_dist(0.0, 1.0);
  long seq = 0;
  for (int step = 0; step < 20000; ++step) {
    const std::size_t slot = rng() % kSlots;
    switch (rng() % 4) {
      case 0:
      case 1: {  // schedule / reschedule
        const double t = time_dist(rng);
        if (by_slot.count(slot)) reference.erase(by_slot[slot]);
        const auto key = std::make_pair(t, seq);
        reference[key] = slot;
        by_slot[slot] = key;
        h.schedule(slot, t, seq, false);
        ++seq;
        break;
      }
      case 2: {  // cancel
        if (by_slot.count(slot)) {
          reference.erase(by_slot[slot]);
          by_slot.erase(slot);
        }
        h.cancel(slot);
        break;
      }
      case 3: {  // pop
        ASSERT_EQ(h.empty(), reference.empty());
        if (!reference.empty()) {
          const auto it = reference.begin();
          EXPECT_EQ(h.top_slot(), it->second);
          EXPECT_DOUBLE_EQ(h.top().t, it->first.first);
          by_slot.erase(it->second);
          reference.erase(it);
          h.pop();
        }
        break;
      }
    }
    ASSERT_EQ(h.size(), reference.size());
  }
  // Drain and verify full ordering.
  while (!reference.empty()) {
    const auto it = reference.begin();
    ASSERT_FALSE(h.empty());
    EXPECT_EQ(h.top_slot(), it->second);
    reference.erase(it);
    h.pop();
  }
  EXPECT_TRUE(h.empty());
}

}  // namespace
}  // namespace charlie::sim
