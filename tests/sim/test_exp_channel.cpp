#include "sim/exp_channel.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "sim/involution.hpp"
#include "util/error.hpp"

namespace charlie::sim {
namespace {

ExpChannelParams typical_params() {
  ExpChannelParams p;
  p.delta_inf_up = 52e-12;
  p.delta_inf_down = 45e-12;
  p.delta_min = 18e-12;
  return p;
}

TEST(ExpChannel, SisDelayMatchesParametrization) {
  ExpChannel ch(typical_params());
  ch.initialize(0.0, false);
  ch.on_input(1e-9, true);
  const auto p = ch.pending();
  ASSERT_TRUE(p.has_value());
  EXPECT_NEAR(p->t - 1e-9, 52e-12, 1e-15);  // SIS rising delay
  ch.on_fire(*p);
  ch.on_input(3e-9, false);
  const auto q = ch.pending();
  ASSERT_TRUE(q.has_value());
  EXPECT_NEAR(q->t - 3e-9, 45e-12, 1e-15);
}

TEST(ExpChannel, DelayFunctionLimits) {
  ExpChannel ch(typical_params());
  ch.initialize(0.0, false);
  // T -> infinity: the SIS delay.
  const auto d_inf = ch.delay_function(1e-6, true);
  ASSERT_TRUE(d_inf.has_value());
  EXPECT_NEAR(*d_inf, 52e-12, 1e-16);
  // T = -delta_min: the expansion point where delta(T) = delta_min.
  const auto d_mid = ch.delay_function(-18e-12, true);
  ASSERT_TRUE(d_mid.has_value());
  EXPECT_NEAR(*d_mid, 18e-12, 1e-16);
  // Below that the delay keeps shrinking (negative values are the IDM's
  // analytic continuation) until the domain edge at -delta_inf_down.
  const auto d_neg = ch.delay_function(-30e-12, true);
  ASSERT_TRUE(d_neg.has_value());
  EXPECT_LT(*d_neg, 18e-12);
  EXPECT_FALSE(ch.delay_function(-45e-12 - 1e-15, true).has_value());
}

TEST(ExpChannel, DelayFunctionIsMonotone) {
  ExpChannel ch(typical_params());
  ch.initialize(0.0, false);
  double prev = -1.0;
  for (double t = -40e-12; t < 200e-12; t += 1e-12) {
    const auto d = ch.delay_function(t, true);
    ASSERT_TRUE(d.has_value());
    EXPECT_GE(*d, prev);
    prev = *d;
  }
}

TEST(ExpChannel, InvolutionPropertyHolds) {
  // -delta_down(-delta_up(T)) = T: the defining IDM property (checked
  // numerically over a wide T range).
  ExpChannel ch(typical_params());
  ch.initialize(0.0, false);
  const auto check = check_involution(
      [&](double t) { return ch.delay_function(t, true); },
      [&](double t) { return ch.delay_function(t, false); }, -40e-12,
      300e-12, 500);
  EXPECT_GT(check.points_checked, 450);
  EXPECT_LT(check.max_abs_error, 1e-21);  // sub-attosecond round-trip error
}

TEST(ExpChannel, ChannelBehaviourMatchesDelayFunction) {
  // Drive the stateful channel and compare against the closed form.
  ExpChannel ch(typical_params());
  ch.initialize(0.0, false);
  ch.on_input(1e-9, true);
  const auto up = ch.pending();
  ASSERT_TRUE(up.has_value());
  ch.on_fire(*up);
  // Falling input 30 ps after the rising output crossing.
  const double t_in = up->t + 30e-12;
  ch.on_input(t_in, false);
  const auto down = ch.pending();
  ASSERT_TRUE(down.has_value());
  const auto expected = ch.delay_function(30e-12, false);
  ASSERT_TRUE(expected.has_value());
  EXPECT_NEAR(down->t - t_in, *expected, 1e-15);
}

TEST(ExpChannel, GlitchCancellation) {
  ExpChannel ch(typical_params());
  ch.initialize(0.0, false);
  ch.on_input(1e-9, true);
  ASSERT_TRUE(ch.pending().has_value());
  // Reverse the input before the waveform reaches the threshold: the
  // pending event disappears (annihilation).
  ch.on_input(1e-9 + 1e-12, false);
  EXPECT_FALSE(ch.pending().has_value());
}

TEST(ExpChannel, CommittedCrossingSurvivesLateCancellation) {
  // Input reversal whose *effective* time (t + delta_min) lands after the
  // pending crossing must not cancel it -- regression for the pure-delay
  // ordering bug.
  ExpChannelParams params = typical_params();
  ExpChannel ch(params);
  ch.initialize(0.0, false);
  ch.on_input(1e-9, true);
  const auto p = ch.pending();
  ASSERT_TRUE(p.has_value());
  // Crossing at 1 ns + 52 ps; reversal at 1 ns + 40 ps has effective time
  // 1 ns + 58 ps > crossing: the crossing is committed.
  ch.on_input(1e-9 + 40e-12, false);
  const auto still = ch.pending();
  ASSERT_TRUE(still.has_value());
  EXPECT_DOUBLE_EQ(still->t, p->t);
  EXPECT_TRUE(still->value);
  // After it fires, the falling crossing from the reversal is exposed.
  ch.on_fire(*still);
  const auto next = ch.pending();
  ASSERT_TRUE(next.has_value());
  EXPECT_FALSE(next->value);
  EXPECT_GT(next->t, still->t);
}

TEST(ExpChannel, ParametersValidated) {
  ExpChannelParams p = typical_params();
  p.delta_min = 60e-12;  // exceeds SIS delays
  EXPECT_THROW(ExpChannel{p}, AssertionError);
  ExpChannelParams q = typical_params();
  q.delta_min = -1e-12;
  EXPECT_THROW(ExpChannel{q}, AssertionError);
}

TEST(ExpChannel, TauFormulas) {
  const ExpChannelParams p = typical_params();
  EXPECT_NEAR(p.tau_up(), (52e-12 - 18e-12) / std::log(2.0), 1e-18);
  EXPECT_NEAR(p.tau_down(), (45e-12 - 18e-12) / std::log(2.0), 1e-18);
}

}  // namespace
}  // namespace charlie::sim
