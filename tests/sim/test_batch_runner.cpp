#include "sim/batch_runner.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "cell/cell_library.hpp"
#include "cell/netlist.hpp"
#include "core/mode_tables.hpp"
#include "sim/circuit_builder.hpp"
#include "sim/hybrid_nor_channel.hpp"
#include "sim/pure_delay.hpp"
#include "sim/run_guard.hpp"
#include "util/error.hpp"
#include "util/fault_injection.hpp"

namespace charlie::sim {
namespace {

BatchConfig small_config() {
  BatchConfig config;
  config.trace.mu = 150e-12;
  config.trace.sigma = 60e-12;
  config.trace.n_transitions = 60;
  config.n_runs = 8;
  config.base_seed = 42;
  config.histogram_bins = 16;
  return config;
}

CircuitFactory nor_factory() {
  const auto tables =
      core::NorModeTables::make(core::NorParams::paper_table1());
  return [tables] {
    auto circuit = std::make_unique<Circuit>();
    const auto a = circuit->add_input("a");
    const auto b = circuit->add_input("b");
    circuit->add_nor2_mis("out", a, b,
                          std::make_unique<HybridNorChannel>(tables));
    return circuit;
  };
}

TEST(Histogram, BinsAndMerge) {
  Histogram h(0.0, 10.0, 10);
  h.add(-1.0);  // underflow
  h.add(0.0);
  h.add(5.5);
  h.add(10.0);  // hi is exclusive -> overflow
  h.add(42.0);  // overflow
  EXPECT_EQ(h.count(), 5u);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 2u);
  EXPECT_EQ(h.bins()[0], 1u);
  EXPECT_EQ(h.bins()[5], 1u);
  Histogram other(0.0, 10.0, 10);
  other.add(5.1);
  h.merge(other);
  EXPECT_EQ(h.count(), 6u);
  EXPECT_EQ(h.bins()[5], 2u);
  EXPECT_DOUBLE_EQ(h.sum(), -1.0 + 0.0 + 5.5 + 10.0 + 42.0 + 5.1);
}

TEST(BatchRunner, ProducesActivity) {
  BatchRunner runner(nor_factory(), "out", small_config());
  const auto result = runner.run();
  EXPECT_EQ(result.n_runs, 8u);
  EXPECT_EQ(result.events_per_run.size(), 8u);
  EXPECT_GT(result.total_events, 0);
  EXPECT_GT(result.total_output_transitions, 0);
  EXPECT_GT(result.pulse_width.count(), 0u);
  EXPECT_GT(result.response_delay.count(), 0u);
  // Every output transition trails some stimulus edge by at least the pure
  // delay and the histogram must see it.
  EXPECT_GT(result.response_delay.mean(), 0.0);
}

TEST(BatchRunner, BitIdenticalAcrossThreadCounts) {
  auto run_with = [&](std::size_t n_threads) {
    BatchConfig config = small_config();
    config.n_threads = n_threads;
    BatchRunner runner(nor_factory(), "out", config);
    return runner.run();
  };
  const auto one = run_with(1);
  for (std::size_t n_threads : {2u, 5u}) {
    const auto many = run_with(n_threads);
    EXPECT_EQ(many.n_threads, n_threads);
    EXPECT_EQ(many.total_events, one.total_events);
    EXPECT_EQ(many.total_output_transitions, one.total_output_transitions);
    EXPECT_EQ(many.events_per_run, one.events_per_run);
    EXPECT_EQ(many.pulse_width.bins(), one.pulse_width.bins());
    EXPECT_EQ(many.pulse_width.sum(), one.pulse_width.sum());
    EXPECT_EQ(many.response_delay.bins(), one.response_delay.bins());
    EXPECT_EQ(many.response_delay.sum(), one.response_delay.sum());
  }
}

TEST(BatchRunner, SeedsChangeResults) {
  BatchConfig config = small_config();
  BatchRunner a(nor_factory(), "out", config);
  config.base_seed = 4242;
  BatchRunner b(nor_factory(), "out", config);
  EXPECT_NE(a.run().total_events, b.run().total_events);
}

TEST(BatchRunner, WorksWithSisChannels) {
  auto factory = [] {
    auto circuit = std::make_unique<Circuit>();
    const auto in = circuit->add_input("in");
    circuit->add_gate(GateKind::kInv, "out", {in},
                      std::make_unique<PureDelayChannel>(10e-12));
    return circuit;
  };
  BatchConfig config = small_config();
  config.n_threads = 2;
  // Keep every gap above the pure delay so no pulse can be swallowed.
  config.trace.min_width = 20e-12;
  BatchRunner runner(factory, "out", config);
  const auto result = runner.run();
  // A pure-delay inverter then reproduces every input transition.
  EXPECT_EQ(result.total_output_transitions,
            static_cast<long long>(config.n_runs * 60));
}

CircuitFactory two_stage_factory() {
  const auto tables =
      core::NorModeTables::make(core::NorParams::paper_table1());
  return [tables] {
    auto circuit = std::make_unique<Circuit>();
    const auto a = circuit->add_input("a");
    const auto b = circuit->add_input("b");
    const auto mid = circuit->add_nor2_mis(
        "mid", a, b, std::make_unique<HybridNorChannel>(tables));
    circuit->add_gate(GateKind::kInv, "out", {mid},
                      std::make_unique<PureDelayChannel>(5e-12));
    return circuit;
  };
}

TEST(BatchRunner, ObservesMultipleNamedNets) {
  const auto config = small_config();
  BatchRunner runner(two_stage_factory(),
                     std::vector<std::string>{"mid", "out"}, config);
  const auto result = runner.run();

  ASSERT_EQ(result.nets.size(), 2u);
  EXPECT_EQ(result.nets[0].net, "mid");
  EXPECT_EQ(result.nets[1].net, "out");
  EXPECT_GT(result.nets[0].transitions, 0);
  // A pure-delay inverter reproduces every mid transition downstream.
  EXPECT_EQ(result.nets[0].transitions, result.nets[1].transitions);
  // The inverter's extra 5 ps shows up in the response-delay aggregate.
  EXPECT_GT(result.nets[1].response_delay.mean(),
            result.nets[0].response_delay.mean());
  // Pulse widths are preserved by a pure delay: identical histograms.
  EXPECT_EQ(result.nets[0].pulse_width.bins(),
            result.nets[1].pulse_width.bins());
  // Legacy single-net view mirrors the first observed net.
  EXPECT_EQ(result.total_output_transitions, result.nets[0].transitions);
  EXPECT_EQ(result.pulse_width.bins(), result.nets[0].pulse_width.bins());
  // Lookup by name; unknown nets are an error.
  EXPECT_EQ(&result.net("out"), &result.nets[1]);
  EXPECT_THROW(result.net("ghost"), ConfigError);
}

TEST(BatchRunner, MultiNetAggregatesAreThreadCountInvariant) {
  auto config = small_config();
  auto run = [&](std::size_t n_threads) {
    config.n_threads = n_threads;
    BatchRunner runner(two_stage_factory(),
                     std::vector<std::string>{"mid", "out"}, config);
    return runner.run();
  };
  const auto serial = run(1);
  const auto parallel = run(4);
  ASSERT_EQ(serial.nets.size(), parallel.nets.size());
  for (std::size_t n = 0; n < serial.nets.size(); ++n) {
    EXPECT_EQ(serial.nets[n].transitions, parallel.nets[n].transitions);
    EXPECT_EQ(serial.nets[n].pulse_width.bins(),
              parallel.nets[n].pulse_width.bins());
    EXPECT_EQ(serial.nets[n].pulse_width.sum(),
              parallel.nets[n].pulse_width.sum());
    EXPECT_EQ(serial.nets[n].response_delay.bins(),
              parallel.nets[n].response_delay.bins());
  }
}

TEST(BatchRunner, SingleNetPathIsUnchangedByTheMultiNetExtension) {
  // The string overload must produce the exact same aggregate as a
  // one-element vector (it delegates).
  const auto config = small_config();
  BatchRunner single(nor_factory(), "out", config);
  BatchRunner vec(nor_factory(), std::vector<std::string>{"out"}, config);
  const auto a = single.run();
  const auto b = vec.run();
  EXPECT_EQ(a.total_output_transitions, b.total_output_transitions);
  EXPECT_EQ(a.total_events, b.total_events);
  EXPECT_EQ(a.pulse_width.bins(), b.pulse_width.bins());
  EXPECT_EQ(a.response_delay.sum(), b.response_delay.sum());
  ASSERT_EQ(a.nets.size(), 1u);
  EXPECT_EQ(a.nets[0].net, "out");
}

TEST(BatchRunner, RepeatedRunsReusePersistentWorkersBitIdentically) {
  // Pool, clones, and arenas persist across run() calls; a second batch on
  // the same runner must reproduce the first exactly (arena reuse must not
  // leak any prior-run state into the traces).
  BatchConfig config = small_config();
  config.n_threads = 3;
  BatchRunner runner(nor_factory(), "out", config);
  const auto first = runner.run();
  const auto second = runner.run();
  EXPECT_EQ(first.total_events, second.total_events);
  EXPECT_EQ(first.events_per_run, second.events_per_run);
  EXPECT_EQ(first.pulse_width.bins(), second.pulse_width.bins());
  EXPECT_EQ(first.response_delay.sum(), second.response_delay.sum());
}

TEST(BatchRunner, C432NetlistIsBitIdenticalAcrossThreadCounts) {
  // Full-front-end determinism lock on the repo's c432-class netlist: the
  // per-worker clones come from CircuitBuilder (hybrid MIS + SIS cells),
  // and every aggregate must be independent of the executing thread count.
  const auto library = std::make_shared<const cell::CellLibrary>(
      cell::CellLibrary::reference());
  const auto desc = cell::read_netlist_file(
      CHARLIE_SOURCE_DIR "/examples/netlists/c432.net");
  const sim::CircuitBuilder builder(library);

  BatchConfig config = small_config();
  config.n_runs = 6;
  config.trace.n_transitions = 30;
  auto run_with = [&](std::size_t n_threads) {
    config.n_threads = n_threads;
    BatchRunner runner([&] { return builder.build(desc); }, desc.outputs,
                       config);
    return runner.run();
  };
  const auto one = run_with(1);
  EXPECT_GT(one.total_events, 0);
  for (std::size_t n_threads : {2u, 4u}) {
    const auto many = run_with(n_threads);
    EXPECT_EQ(many.total_events, one.total_events);
    EXPECT_EQ(many.events_per_run, one.events_per_run);
    ASSERT_EQ(many.nets.size(), one.nets.size());
    for (std::size_t n = 0; n < one.nets.size(); ++n) {
      EXPECT_EQ(many.nets[n].transitions, one.nets[n].transitions)
          << one.nets[n].net;
      EXPECT_EQ(many.nets[n].pulse_width.bins(),
                one.nets[n].pulse_width.bins());
      EXPECT_EQ(many.nets[n].pulse_width.sum(), one.nets[n].pulse_width.sum());
      EXPECT_EQ(many.nets[n].response_delay.bins(),
                one.nets[n].response_delay.bins());
      EXPECT_EQ(many.nets[n].response_delay.sum(),
                one.nets[n].response_delay.sum());
    }
  }
}

TEST(BatchRunner, PerRunEventBudgetTerminatesRunsNotTheBatch) {
  // A budget every run exceeds: each run terminates with a structured
  // status, the batch itself completes, and the cut is deterministic.
  BatchConfig config = small_config();
  config.budget.max_events = 40;  // every run carries 60 stimulus edges
  auto run_with = [&](std::size_t n_threads) {
    config.n_threads = n_threads;
    BatchRunner runner(nor_factory(), "out", config);
    return runner.run();
  };
  const auto one = run_with(1);
  EXPECT_FALSE(one.all_ok());
  EXPECT_EQ(one.n_failed, config.n_runs);
  ASSERT_EQ(one.diagnostics.size(), config.n_runs);
  for (std::size_t run = 0; run < config.n_runs; ++run) {
    EXPECT_EQ(one.diagnostics[run].status, RunStatus::kBudgetExhausted);
    // The guard stops after exactly max_events processed events.
    EXPECT_EQ(one.events_per_run[run], 40);
    EXPECT_EQ(one.diagnostics[run].n_events, 40);
  }
  // Terminated runs contribute no histogram samples (partial traces would
  // skew the distributions silently).
  EXPECT_EQ(one.pulse_width.count(), 0u);
  EXPECT_EQ(one.response_delay.count(), 0u);
  for (std::size_t n_threads : {2u, 4u}) {
    const auto many = run_with(n_threads);
    EXPECT_EQ(many.n_failed, one.n_failed);
    EXPECT_EQ(many.events_per_run, one.events_per_run);
  }
}

TEST(BatchRunner, InjectedFaultIsolatesFailingRunsDeterministically) {
  util::FaultInjector::Scope scope;
  util::FaultInjector::reset_local_hits();
  const auto config = small_config();

  // Clean baseline, no plans armed.
  BatchRunner baseline_runner(nor_factory(), "out", config);
  const auto baseline = baseline_runner.run();
  ASSERT_TRUE(baseline.all_ok());
  ASSERT_EQ(baseline.diagnostics.size(), config.n_runs);

  // Measure each run's crossing-solve count with a counting no-op plan
  // (kForceBranch never fires a throw at this site): run i's content is a
  // pure function of (base_seed, first_run_index + i), so a single-run
  // batch re-based at run i replays exactly run i's content.
  std::vector<long> solves;
  for (std::size_t run = 0; run < config.n_runs; ++run) {
    util::FaultInjector::arm(
        "crossing.solve", {util::FaultInjector::Action::kForceBranch, 0, -1});
    BatchConfig single = config;
    single.n_runs = 1;
    single.first_run_index = run;
    BatchRunner one(nor_factory(), "out", single);
    ASSERT_TRUE(one.run().all_ok());
    solves.push_back(util::FaultInjector::fires("crossing.solve"));
  }
  const long lo = *std::min_element(solves.begin(), solves.end());
  const long hi = *std::max_element(solves.begin(), solves.end());
  ASSERT_LT(lo, hi) << "seeds produced identical solve counts; the "
                       "partial-failure threshold needs spread";
  // Runs needing more than `threshold` solves fail at solve `threshold`;
  // the rest never reach it. Per-run tallies reset at each run boundary,
  // so the failing set is a function of run content only.
  const long threshold = (lo + hi) / 2;

  auto faulted = [&](std::size_t n_threads) {
    util::FaultInjector::arm(
        "crossing.solve",
        {util::FaultInjector::Action::kConvergenceError, threshold, 1});
    BatchConfig c = config;
    c.n_threads = n_threads;
    BatchRunner runner(nor_factory(), "out", c);
    return runner.run();
  };
  const auto one = faulted(1);
  EXPECT_FALSE(one.all_ok());
  EXPECT_GT(one.n_failed, 0u);
  EXPECT_LT(one.n_failed, config.n_runs);
  ASSERT_EQ(one.diagnostics.size(), config.n_runs);
  for (std::size_t run = 0; run < config.n_runs; ++run) {
    const bool should_fail = solves[run] > threshold;
    EXPECT_EQ(one.diagnostics[run].status != RunStatus::kOk, should_fail)
        << "run " << run << " solves " << solves[run];
    if (should_fail) {
      EXPECT_EQ(one.diagnostics[run].status, RunStatus::kFailed);
      EXPECT_NE(one.diagnostics[run].error.find("injected fault"),
                std::string::npos)
          << one.diagnostics[run].error;
    } else {
      // Isolation: a surviving run is bit-identical to the clean baseline.
      EXPECT_EQ(one.events_per_run[run], baseline.events_per_run[run]);
      EXPECT_TRUE(one.diagnostics[run].error.empty());
    }
  }

  // The per-run outcome vector is thread-count invariant.
  for (std::size_t n_threads : {2u, 4u}) {
    const auto many = faulted(n_threads);
    EXPECT_EQ(many.n_failed, one.n_failed) << n_threads << " threads";
    EXPECT_EQ(many.events_per_run, one.events_per_run);
    ASSERT_EQ(many.diagnostics.size(), one.diagnostics.size());
    for (std::size_t run = 0; run < config.n_runs; ++run) {
      EXPECT_EQ(many.diagnostics[run].status, one.diagnostics[run].status);
    }
    EXPECT_EQ(many.pulse_width.bins(), one.pulse_width.bins());
    EXPECT_EQ(many.response_delay.sum(), one.response_delay.sum());
  }

  // The pool and its clones survive a faulted batch: a disarmed rerun on
  // the same runner reproduces the clean baseline bit-identically.
  BatchConfig c2 = config;
  c2.n_threads = 2;
  BatchRunner persistent(nor_factory(), "out", c2);
  util::FaultInjector::arm(
      "crossing.solve",
      {util::FaultInjector::Action::kConvergenceError, threshold, 1});
  EXPECT_EQ(persistent.run().n_failed, one.n_failed);
  util::FaultInjector::disarm("crossing.solve");
  const auto clean = persistent.run();
  EXPECT_TRUE(clean.all_ok());
  EXPECT_EQ(clean.events_per_run, baseline.events_per_run);
  EXPECT_EQ(clean.pulse_width.bins(), baseline.pulse_width.bins());
  EXPECT_EQ(clean.response_delay.sum(), baseline.response_delay.sum());
}

}  // namespace
}  // namespace charlie::sim
