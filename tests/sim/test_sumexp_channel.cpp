#include "sim/sumexp_channel.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace charlie::sim {
namespace {

SumExpChannelParams typical_params() {
  SumExpChannelParams p;
  p.tau_up_a = 10e-12;
  p.tau_up_b = 40e-12;
  p.weight_up = 0.7;
  p.tau_down_a = 8e-12;
  p.tau_down_b = 30e-12;
  p.weight_down = 0.6;
  p.delta_min = 5e-12;
  return p;
}

TEST(SumExpChannel, SisDelayMatchesComputedCrossing) {
  const SumExpChannelParams p = typical_params();
  SumExpChannel ch(p);
  ch.initialize(0.0, false);
  ch.on_input(1e-9, true);
  const auto e = ch.pending();
  ASSERT_TRUE(e.has_value());
  EXPECT_NEAR(e->t - 1e-9, p.sis_delay(true), 1e-15);
}

TEST(SumExpChannel, CalibrationHitsTarget) {
  SumExpChannelParams p = typical_params();
  p.calibrate_direction(true, 50e-12);
  p.calibrate_direction(false, 42e-12);
  EXPECT_NEAR(p.sis_delay(true), 50e-12, 1e-15);
  EXPECT_NEAR(p.sis_delay(false), 42e-12, 1e-15);
  // Tau ratio preserved by calibration.
  EXPECT_NEAR(p.tau_up_b / p.tau_up_a, 4.0, 1e-9);
}

TEST(SumExpChannel, CalibrationRejectsTargetBelowDeltaMin) {
  SumExpChannelParams p = typical_params();
  EXPECT_THROW(p.calibrate_direction(true, 4e-12), AssertionError);
}

TEST(SumExpChannel, GlitchCancellation) {
  SumExpChannel ch(typical_params());
  ch.initialize(0.0, false);
  ch.on_input(1e-9, true);
  ASSERT_TRUE(ch.pending().has_value());
  ch.on_input(1e-9 + 1e-12, false);
  EXPECT_FALSE(ch.pending().has_value());
}

TEST(SumExpChannel, SlowTailDelaysPartialSwing) {
  // After a partial transition, the remaining swing is dominated by the
  // slow exponential: the second delay must exceed the SIS delay ... no:
  // a partial swing starts closer to the rail, so the return crossing is
  // FASTER than SIS. Check that.
  const SumExpChannelParams p = typical_params();
  SumExpChannel ch(p);
  ch.initialize(0.0, false);
  ch.on_input(1e-9, true);
  const auto up = ch.pending();
  ASSERT_TRUE(up.has_value());
  ch.on_fire(*up);
  // Turn around shortly after the upward crossing: v is just above 1/2,
  // so the falling crossing comes much sooner than the full-swing delay.
  const double t_in = up->t + 1e-12;
  ch.on_input(t_in, false);
  const auto down = ch.pending();
  ASSERT_TRUE(down.has_value());
  EXPECT_LT(down->t - t_in, p.sis_delay(false));
}

TEST(SumExpChannel, CommittedCrossingSurvivesLateCancellation) {
  SumExpChannelParams p = typical_params();
  p.delta_min = 20e-12;
  SumExpChannel ch(p);
  ch.initialize(0.0, false);
  ch.on_input(1e-9, true);
  const auto up = ch.pending();
  ASSERT_TRUE(up.has_value());
  // Reversal 1 ps before the crossing, but effective 19 ps after it.
  ch.on_input(up->t - 1e-12, false);
  const auto still = ch.pending();
  ASSERT_TRUE(still.has_value());
  EXPECT_DOUBLE_EQ(still->t, up->t);
}

TEST(SumExpChannel, DegeneratesToExpWhenWeightIsOne) {
  SumExpChannelParams p;
  p.tau_up_a = 20e-12;
  p.tau_up_b = 100e-12;  // irrelevant at weight 1
  p.weight_up = 1.0;
  p.tau_down_a = 20e-12;
  p.tau_down_b = 100e-12;
  p.weight_down = 1.0;
  p.delta_min = 0.0;
  constexpr double kLn2 = 0.6931471805599453;
  EXPECT_NEAR(p.sis_delay(true), 20e-12 * kLn2, 1e-16);
}

TEST(SumExpChannel, ValidatesParameters) {
  SumExpChannelParams p = typical_params();
  p.weight_up = 1.5;
  EXPECT_THROW(SumExpChannel{p}, AssertionError);
  p = typical_params();
  p.tau_down_a = 0.0;
  EXPECT_THROW(SumExpChannel{p}, AssertionError);
}

}  // namespace
}  // namespace charlie::sim
