// The statistical batch pipeline: ProcessVariation sampling (counter-based,
// order-independent), ProcessBinder channel retargeting, and BatchRunner's
// distribution queries (quantiles, yield, criticality) -- including the
// thread-count invariance and split-batch guarantees.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "cell/cell_library.hpp"
#include "cell/netlist.hpp"
#include "core/mode_tables.hpp"
#include "core/process_point.hpp"
#include "sim/batch_runner.hpp"
#include "sim/circuit_builder.hpp"
#include "sim/hybrid_nor_channel.hpp"
#include "sim/process_variation.hpp"
#include "util/error.hpp"

namespace charlie::sim {
namespace {

ProcessVariation small_variation() {
  ProcessVariation v;
  v.vdd_sigma = 0.02;
  v.vth_sigma = 0.01;
  v.drive_sigma = 0.03;
  return v;
}

TEST(ProcessVariation, SampleIsPureFunctionOfSeedAndIndex) {
  const ProcessVariation v = small_variation();
  // Draw indices forward and backward: identical points either way.
  std::vector<core::ProcessPoint> forward, backward;
  for (std::uint64_t i = 0; i < 16; ++i) forward.push_back(v.sample(7, i));
  for (std::uint64_t i = 16; i-- > 0;) backward.push_back(v.sample(7, i));
  for (std::uint64_t i = 0; i < 16; ++i) {
    EXPECT_EQ(forward[i].fingerprint(), backward[15 - i].fingerprint());
  }
  // Different index or seed -> different point.
  EXPECT_NE(v.sample(7, 0).fingerprint(), v.sample(7, 1).fingerprint());
  EXPECT_NE(v.sample(7, 0).fingerprint(), v.sample(8, 0).fingerprint());
}

TEST(ProcessVariation, SamplesStayInsideTheGridSpan) {
  const ProcessVariation v = small_variation();
  const core::ModeTableGrid::Spec spec = v.grid_spec();
  for (std::uint64_t i = 0; i < 500; ++i) {
    const core::ProcessPoint p = v.sample(2022, i);
    EXPECT_GE(p.vdd_scale, spec.vdd_scale.lo);
    EXPECT_LE(p.vdd_scale, spec.vdd_scale.hi);
    EXPECT_GE(p.vth_shift, spec.vth_shift.lo);
    EXPECT_LE(p.vth_shift, spec.vth_shift.hi);
    EXPECT_GE(p.drive_scale, spec.drive_scale.lo);
    EXPECT_LE(p.drive_scale, spec.drive_scale.hi);
  }
}

TEST(ProcessVariation, InactiveAxesStayExactlyNominal) {
  ProcessVariation v;
  v.vdd_sigma = 0.02;  // only the supply varies
  for (std::uint64_t i = 0; i < 32; ++i) {
    const core::ProcessPoint p = v.sample(1, i);
    EXPECT_EQ(p.vth_shift, 0.0);
    EXPECT_EQ(p.drive_scale, 1.0);
  }
  // Activating another sigma must not change the vdd stream (each axis
  // always consumes the same draws).
  ProcessVariation v2 = v;
  v2.drive_sigma = 0.05;
  for (std::uint64_t i = 0; i < 32; ++i) {
    EXPECT_EQ(v2.sample(1, i).vdd_scale, v.sample(1, i).vdd_scale);
  }
}

TEST(ProcessVariation, ValidateRejectsBadKnobs) {
  ProcessVariation v = small_variation();
  v.vdd_sigma = -0.1;
  EXPECT_THROW(v.validate(), ConfigError);
  v = small_variation();
  v.grid_levels = 1;
  EXPECT_THROW(v.validate(), ConfigError);
  v = small_variation();
  v.drive_sigma = 0.4;  // 3.5 sigma crosses zero drive
  EXPECT_THROW(v.validate(), ConfigError);
  EXPECT_NO_THROW(small_variation().validate());
}

// A two-gate circuit sharing one NOR table plus one inertial inverter.
struct BoundCircuit {
  std::shared_ptr<const core::GateModeTables> tables;
  std::unique_ptr<Circuit> circuit;
  HybridGateChannel* nor_a = nullptr;
  HybridGateChannel* nor_b = nullptr;
  InertialChannel* inv = nullptr;
};

BoundCircuit bound_circuit() {
  BoundCircuit bc;
  bc.tables = core::NorModeTables::make(core::NorParams::paper_table1());
  bc.circuit = std::make_unique<Circuit>();
  const auto a = bc.circuit->add_input("a");
  const auto b = bc.circuit->add_input("b");
  auto ch_a = std::make_unique<HybridGateChannel>(bc.tables);
  auto ch_b = std::make_unique<HybridGateChannel>(bc.tables);
  bc.nor_a = ch_a.get();
  bc.nor_b = ch_b.get();
  const auto m = bc.circuit->add_mis_gate(GateKind::kNor2, "m", {a, b},
                                          std::move(ch_a));
  const auto n = bc.circuit->add_mis_gate(GateKind::kNor2, "n", {m, b},
                                          std::move(ch_b));
  auto inv = std::make_unique<InertialChannel>(10e-12, 12e-12);
  bc.inv = inv.get();
  bc.circuit->add_gate(GateKind::kInv, "out", {n}, std::move(inv));
  return bc;
}

TEST(ProcessBinder, RebindsSharedTablesOnceAndRestoresNominalBitExactly) {
  BoundCircuit bc = bound_circuit();
  const ProcessVariation v = small_variation();
  ProcessBinder::GridMap grids;
  ProcessBinder::build_grids(*bc.circuit, v.grid_spec(), grids);
  EXPECT_EQ(grids.size(), 1u);  // one shared table -> one grid

  ProcessBinder binder(*bc.circuit, grids);
  EXPECT_EQ(binder.n_hybrid_channels(), 2u);
  EXPECT_EQ(binder.n_inertial_channels(), 1u);
  EXPECT_EQ(binder.vdd_nominal(), bc.tables->gate_params().vdd);

  core::ProcessPoint corner;
  corner.vdd_scale = 1.03;
  corner.vth_shift = -0.01;
  corner.drive_scale = 0.95;
  binder.bind(corner);
  // Both channels moved off the nominal table, onto one shared local copy.
  EXPECT_NE(bc.nor_a->gate_tables().get(), bc.tables.get());
  EXPECT_EQ(bc.nor_a->gate_tables().get(), bc.nor_b->gate_tables().get());
  EXPECT_EQ(bc.nor_a->gate_tables()->vth(),
            corner.vdd_scale * bc.tables->gate_params().vdd / 2.0);
  const double s = corner.resistance_scale(bc.tables->gate_params().vdd);
  EXPECT_DOUBLE_EQ(bc.inv->delay_up(), 10e-12 * s);
  EXPECT_DOUBLE_EQ(bc.inv->delay_down(), 12e-12 * s);

  // The nominal point restores the original shared tables and delays.
  binder.bind(core::ProcessPoint());
  EXPECT_EQ(bc.nor_a->gate_tables().get(), bc.tables.get());
  EXPECT_EQ(bc.nor_b->gate_tables().get(), bc.tables.get());
  EXPECT_EQ(bc.inv->delay_up(), 10e-12);
  EXPECT_EQ(bc.inv->delay_down(), 12e-12);
}

TEST(ProcessBinder, RequiresGridsForEveryHybridTable) {
  BoundCircuit bc = bound_circuit();
  const ProcessBinder::GridMap empty;
  EXPECT_THROW(ProcessBinder(*bc.circuit, empty), ConfigError);
}

BatchConfig stat_config() {
  BatchConfig config;
  config.trace.mu = 150e-12;
  config.trace.sigma = 60e-12;
  config.trace.n_transitions = 40;
  config.n_runs = 24;
  config.base_seed = 2022;
  config.histogram_bins = 16;
  config.variation = small_variation();
  return config;
}

CircuitFactory nor_chain_factory() {
  const auto tables =
      core::NorModeTables::make(core::NorParams::paper_table1());
  return [tables] {
    auto circuit = std::make_unique<Circuit>();
    const auto a = circuit->add_input("a");
    const auto b = circuit->add_input("b");
    const auto m = circuit->add_mis_gate(
        GateKind::kNor2, "m", {a, b},
        std::make_unique<HybridGateChannel>(tables));
    circuit->add_mis_gate(GateKind::kNor2, "out", {m, b},
                          std::make_unique<HybridGateChannel>(tables));
    return circuit;
  };
}

TEST(BatchStats, VariationChangesTheAggregateAndNominalDoesNot) {
  BatchConfig with = stat_config();
  BatchConfig without = stat_config();
  without.variation = ProcessVariation{};  // disabled
  BatchRunner a(nor_chain_factory(), "out", with);
  BatchRunner b(nor_chain_factory(), "out", without);
  const auto va = a.run();
  const auto vb = b.run();
  ASSERT_TRUE(va.all_ok());
  ASSERT_TRUE(vb.all_ok());
  // Same stimuli, different process corners: the delay distribution moves.
  EXPECT_NE(va.response_delay.sum(), vb.response_delay.sum());
  // Nominal batches still produce the statistical queries.
  EXPECT_EQ(vb.stats.n_samples, vb.n_runs);
  EXPECT_GT(vb.stats.mean, 0.0);
}

TEST(BatchStats, QuantileYieldAndCriticalityAreInternallyConsistent) {
  BatchConfig config = stat_config();
  config.quantiles = {0.5, 0.95};
  BatchRunner runner(nor_chain_factory(),
                     std::vector<std::string>{"m", "out"}, config);
  const auto result = runner.run();
  ASSERT_TRUE(result.all_ok());
  const BatchStats& st = result.stats;
  ASSERT_EQ(st.n_samples, result.n_runs);

  // Quantiles are order statistics of the per-run critical delays.
  std::vector<double> sorted;
  for (const double d : result.critical_delays) {
    ASSERT_GE(d, 0.0);
    sorted.push_back(d);
  }
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(st.min, sorted.front());
  EXPECT_EQ(st.max, sorted.back());
  ASSERT_EQ(st.quantiles.size(), 2u);
  EXPECT_EQ(st.quantiles[0].first, 0.5);
  EXPECT_EQ(st.quantiles[0].second,
            sorted[(sorted.size() + 1) / 2 - 1]);  // nearest rank, n even
  EXPECT_LE(st.quantiles[0].second, st.quantiles[1].second);
  EXPECT_GE(st.mean, st.min);
  EXPECT_LE(st.mean, st.max);
  EXPECT_GT(st.stddev, 0.0);

  // Criticality counts partition the sampled runs across observed nets.
  ASSERT_EQ(st.criticality.size(), 2u);
  EXPECT_EQ(st.criticality[0] + st.criticality[1], st.n_samples);

  // Yield against a deadline at the maximum is 100%; just below the
  // minimum it is 0%.
  BatchConfig all = config;
  all.stat_deadline = st.max;
  BatchRunner all_runner(nor_chain_factory(),
                         std::vector<std::string>{"m", "out"}, all);
  const auto all_result = all_runner.run();
  EXPECT_EQ(all_result.stats.n_meeting_deadline, st.n_samples);
  EXPECT_EQ(all_result.stats.yield, 1.0);
  BatchConfig none = config;
  none.stat_deadline = st.min * 0.5;
  BatchRunner none_runner(nor_chain_factory(),
                          std::vector<std::string>{"m", "out"}, none);
  EXPECT_EQ(none_runner.run().stats.yield, 0.0);
}

TEST(BatchStats, SplitBatchViaFirstRunIndexMatchesTheFullBatch) {
  BatchConfig config = stat_config();
  config.n_runs = 12;
  BatchRunner full(nor_chain_factory(), "out", config);
  const auto whole = full.run();

  std::vector<long> events;
  std::vector<double> delays;
  for (std::uint64_t half = 0; half < 2; ++half) {
    BatchConfig part = config;
    part.n_runs = 6;
    part.first_run_index = half * 6;
    BatchRunner runner(nor_chain_factory(), "out", part);
    const auto result = runner.run();
    events.insert(events.end(), result.events_per_run.begin(),
                  result.events_per_run.end());
    delays.insert(delays.end(), result.critical_delays.begin(),
                  result.critical_delays.end());
  }
  // Per-run content is a pure function of the global run index: the split
  // halves reproduce the full batch exactly, run for run.
  EXPECT_EQ(events, whole.events_per_run);
  EXPECT_EQ(delays, whole.critical_delays);
}

TEST(BatchStats, FailedRunsAreExcludedFromTheStatistics) {
  BatchConfig config = stat_config();
  config.budget.max_events = 30;  // every run trips the budget
  BatchRunner runner(nor_chain_factory(), "out", config);
  const auto result = runner.run();
  EXPECT_EQ(result.n_failed, result.n_runs);
  EXPECT_EQ(result.stats.n_samples, 0u);
  ASSERT_EQ(result.critical_delays.size(), result.n_runs);
  for (const double d : result.critical_delays) EXPECT_EQ(d, -1.0);
  // Empty-sample statistics stay well-defined.
  EXPECT_EQ(result.stats.mean, 0.0);
  ASSERT_EQ(result.stats.quantiles.size(), config.quantiles.size());
  for (const auto& [q, value] : result.stats.quantiles) {
    EXPECT_EQ(value, 0.0);
  }
}

TEST(BatchStats, C432VariationBatchIsBitIdenticalAcrossThreadCounts) {
  // The acceptance lock: a >= 200-sample variation batch over the repo's
  // c432-class netlist (hybrid MIS + SIS cells through CircuitBuilder)
  // produces bit-identical statistical aggregates at 1, 2, and 4 threads.
  const auto library = std::make_shared<const cell::CellLibrary>(
      cell::CellLibrary::reference());
  const auto desc = cell::read_netlist_file(
      CHARLIE_SOURCE_DIR "/examples/netlists/c432.net");
  const sim::CircuitBuilder builder(library);

  BatchConfig config = stat_config();
  config.n_runs = 200;
  config.trace.n_transitions = 12;
  config.stat_deadline = 1e-9;
  auto run_with = [&](std::size_t n_threads) {
    config.n_threads = n_threads;
    BatchRunner runner([&] { return builder.build(desc); }, desc.outputs,
                       config);
    return runner.run();
  };
  const auto one = run_with(1);
  EXPECT_GT(one.stats.n_samples, 0u);
  EXPECT_GT(one.stats.stddev, 0.0);  // variation really spreads the delays
  for (std::size_t n_threads : {2u, 4u}) {
    const auto many = run_with(n_threads);
    EXPECT_EQ(many.events_per_run, one.events_per_run);
    EXPECT_EQ(many.critical_delays, one.critical_delays);
    EXPECT_EQ(many.stats.n_samples, one.stats.n_samples);
    EXPECT_EQ(many.stats.mean, one.stats.mean);
    EXPECT_EQ(many.stats.stddev, one.stats.stddev);
    EXPECT_EQ(many.stats.min, one.stats.min);
    EXPECT_EQ(many.stats.max, one.stats.max);
    EXPECT_EQ(many.stats.quantiles, one.stats.quantiles);
    EXPECT_EQ(many.stats.n_meeting_deadline, one.stats.n_meeting_deadline);
    EXPECT_EQ(many.stats.yield, one.stats.yield);
    EXPECT_EQ(many.stats.criticality, one.stats.criticality);
    ASSERT_EQ(many.nets.size(), one.nets.size());
    for (std::size_t n = 0; n < one.nets.size(); ++n) {
      EXPECT_EQ(many.nets[n].response_delay.sum(),
                one.nets[n].response_delay.sum());
    }
  }
}

}  // namespace
}  // namespace charlie::sim
