#include "sim/hybrid_gate_channel.hpp"

#include <gtest/gtest.h>

#include "core/gate_delay.hpp"
#include "sim/circuit.hpp"
#include "sim/gate_models.hpp"
#include "sim/hybrid_nor_channel.hpp"
#include "sim/pure_delay.hpp"
#include "util/error.hpp"

namespace charlie::sim {
namespace {

using core::GateParams;
using core::GateTopology;

// The generalized channel instantiated for a NOR2 must behave exactly like
// the NOR2 subclass (they share the implementation; this pins the GateState
// plumbing).
TEST(HybridGateChannel, Nor2MatchesHybridNorChannel) {
  const auto nor = core::NorParams::paper_table1();
  HybridGateChannel general(GateParams::from_nor(nor));
  HybridNorChannel specific(nor);
  for (auto* ch :
       std::initializer_list<HybridGateChannel*>{&general, &specific}) {
    ch->initialize(0.0, {false, false});
    ch->on_input(1e-9, 0, true);
    ch->on_input(1e-9 + 7e-12, 1, true);
  }
  ASSERT_TRUE(general.pending().has_value());
  ASSERT_TRUE(specific.pending().has_value());
  EXPECT_DOUBLE_EQ(general.pending()->t, specific.pending()->t);
  EXPECT_EQ(general.pending()->value, specific.pending()->value);
  EXPECT_EQ(general.input_state(), specific.input_state());
}

class Nor3ChannelFixture : public ::testing::Test {
 protected:
  const GateParams params_ = GateParams::nor3_reference();
};

TEST_F(Nor3ChannelFixture, InitialStateFollowsInputs) {
  HybridGateChannel ch(params_);
  EXPECT_EQ(ch.n_inputs(), 3);
  ch.initialize(0.0, {false, false, false});
  EXPECT_TRUE(ch.initial_output());
  ch.initialize(0.0, {false, true, false});
  EXPECT_FALSE(ch.initial_output());
  EXPECT_EQ(ch.input_state(), 0b010u);
}

TEST_F(Nor3ChannelFixture, SisDelayMatchesClosedFormCrossing) {
  // Event-driven channel vs the independent gate_output_crossing solver.
  GateParams raw = params_;
  raw.delta_min = 0.0;
  const auto tables = core::GateModeTables::make(raw);
  for (int port = 0; port < 3; ++port) {
    HybridGateChannel ch(tables);
    ch.initialize(0.0, {false, false, false});
    ch.on_input(1e-9, port, true);
    const auto p = ch.pending();
    ASSERT_TRUE(p.has_value()) << "port=" << port;
    EXPECT_FALSE(p->value);
    const core::GateInputEvent ev{0.0, port, true};
    const double expected = core::gate_output_crossing(
        *tables, 0u, 0.0, std::span<const core::GateInputEvent>(&ev, 1),
        /*rising=*/false);
    EXPECT_NEAR(p->t - 1e-9, expected, 1e-14) << "port=" << port;
  }
}

TEST_F(Nor3ChannelFixture, MisSpeedupVisibleThroughChannel) {
  // Three simultaneous rising inputs produce an earlier output event than
  // any lone rising input -- the 3-strong Charlie effect.
  HybridGateChannel lone(params_);
  lone.initialize(0.0, {false, false, false});
  lone.on_input(1e-9, 2, true);
  HybridGateChannel all(params_);
  all.initialize(0.0, {false, false, false});
  for (int port = 0; port < 3; ++port) all.on_input(1e-9, port, true);
  ASSERT_TRUE(lone.pending().has_value());
  ASSERT_TRUE(all.pending().has_value());
  EXPECT_LT(all.pending()->t, lone.pending()->t - 5e-12);
}

TEST_F(Nor3ChannelFixture, GlitchCancellation) {
  HybridGateChannel ch(params_);
  ch.initialize(0.0, {false, false, false});
  ch.on_input(1e-9, 1, true);
  ASSERT_TRUE(ch.pending().has_value());
  ch.on_input(1e-9 + 2e-12, 1, false);  // effective before the crossing
  EXPECT_FALSE(ch.pending().has_value());
}

TEST_F(Nor3ChannelFixture, ThirdInputKeepsOutputLowAfterRelease) {
  // A and B rise (output falls); C rises; releasing A and B must not
  // produce a rising event while C still holds the output low.
  HybridGateChannel ch(params_);
  ch.initialize(0.0, {false, false, false});
  ch.on_input(1e-9, 0, true);
  ch.on_input(1e-9, 1, true);
  const auto fall = ch.pending();
  ASSERT_TRUE(fall.has_value());
  ch.on_fire(*fall);
  ch.on_input(2e-9, 2, true);
  ch.on_input(3e-9, 0, false);
  ch.on_input(3e-9, 1, false);
  EXPECT_FALSE(ch.pending().has_value());
  // Releasing C finally schedules the rising crossing.
  ch.on_input(4e-9, 2, false);
  const auto rise = ch.pending();
  ASSERT_TRUE(rise.has_value());
  EXPECT_TRUE(rise->value);
}

class Nand3ChannelFixture : public ::testing::Test {
 protected:
  const GateParams params_ = GateParams::nand3_reference();
};

TEST_F(Nand3ChannelFixture, OutputLogicAndEvents) {
  HybridGateChannel ch(params_);
  ch.initialize(0.0, {true, true, false});
  EXPECT_TRUE(ch.initial_output());
  // C rises: the stack completes and the output falls.
  ch.on_input(1e-9, 2, true);
  const auto fall = ch.pending();
  ASSERT_TRUE(fall.has_value());
  EXPECT_FALSE(fall->value);
  ch.on_fire(*fall);
  // Any input falling lifts the output again.
  ch.on_input(2e-9, 0, false);
  const auto rise = ch.pending();
  ASSERT_TRUE(rise.has_value());
  EXPECT_TRUE(rise->value);
}

TEST_F(Nand3ChannelFixture, SisDelayMatchesClosedFormCrossing) {
  GateParams raw = params_;
  raw.delta_min = 0.0;
  const auto tables = core::GateModeTables::make(raw);
  const core::GateState all = 0b111;
  for (int port = 0; port < 3; ++port) {
    HybridGateChannel ch(tables);
    ch.initialize(0.0, {true, true, true});
    ch.on_input(1e-9, port, false);
    const auto p = ch.pending();
    ASSERT_TRUE(p.has_value()) << "port=" << port;
    EXPECT_TRUE(p->value);
    const core::GateInputEvent ev{0.0, port, false};
    const double expected = core::gate_output_crossing(
        *tables, all, raw.worst_case_hold(),
        std::span<const core::GateInputEvent>(&ev, 1), /*rising=*/true);
    EXPECT_NEAR(p->t - 1e-9, expected, 1e-14) << "port=" << port;
  }
}

TEST_F(Nand3ChannelFixture, FrozenStackHoldsWorstCaseAtInit) {
  // All-low NAND3 isolates the stack; initialization must assume the
  // worst-case charged internal node (VDD), the dual of the NOR's GND.
  HybridGateChannel ch(params_);
  ch.initialize(0.0, {false, false, false});
  EXPECT_DOUBLE_EQ(ch.state_at(0.0).x, params_.vdd);
  EXPECT_DOUBLE_EQ(ch.state_at(0.0).y, params_.vdd);
}

TEST(SisLogicGate, ZeroTimeLogicFiltersNonControllingEdges) {
  // NAND3 through a pure-delay SIS channel: edges that do not change the
  // boolean value must not reach the channel.
  auto gate = make_pure_gate(GateTopology::kNandLike, 3,
                             SisGateDelays{20e-12, 25e-12});
  gate->initialize(0.0, {true, true, false});
  EXPECT_TRUE(gate->initial_output());
  gate->on_input(1e-9, 0, false);  // output stays high (C still low)
  EXPECT_FALSE(gate->pending().has_value());
  gate->on_input(2e-9, 0, true);
  gate->on_input(3e-9, 2, true);  // completes the stack: output falls
  const auto p = gate->pending();
  ASSERT_TRUE(p.has_value());
  EXPECT_FALSE(p->value);
}

TEST(CircuitMultiInput, Nor3AndNand3GatesSimulate) {
  // NOR3 with a native hybrid channel driving a NAND3 SIS gate.
  Circuit c;
  const auto a = c.add_input("a");
  const auto b = c.add_input("b");
  const auto d = c.add_input("d");
  const auto nor_out = c.add_mis_gate(
      GateKind::kNor3, "nor3", {a, b, d},
      std::make_unique<HybridGateChannel>(GateParams::nor3_reference()));
  c.add_gate(GateKind::kNand3, "nand3", {a, b, nor_out},
             std::make_unique<PureDelayChannel>(10e-12));

  // All inputs low: NOR3 high, NAND3(0,0,1) high.
  waveform::DigitalTrace sa(false, {1e-9});
  waveform::DigitalTrace sb(false, {1e-9});
  waveform::DigitalTrace sd(false, {});
  const auto result = c.simulate({sa, sb, sd}, 0.0, 10e-9);
  const auto& nor_trace = result.trace(nor_out);
  // a, b rising pulls the NOR3 low once.
  ASSERT_EQ(nor_trace.n_transitions(), 1u);
  EXPECT_FALSE(nor_trace.final_value());
  // NAND3 inputs (a, b, nor3): (1,1,1) while the NOR3 is still falling,
  // then (1,1,0) -- a pure-delay channel propagates the real glitch: one
  // falling edge, one rising edge, high again at the end.
  const auto& nand_trace = result.trace(c.find_net("nand3"));
  EXPECT_TRUE(nand_trace.initial_value());
  ASSERT_EQ(nand_trace.n_transitions(), 2u);
  EXPECT_FALSE(nand_trace.is_rising(0));
  EXPECT_TRUE(nand_trace.is_rising(1));
  EXPECT_LT(nand_trace.transitions()[0], nand_trace.transitions()[1]);
  EXPECT_TRUE(nand_trace.final_value());
}

TEST(CircuitMultiInput, MisGateArityMismatchFailsLoudly) {
  Circuit c;
  const auto a = c.add_input("a");
  const auto b = c.add_input("b");
  EXPECT_THROW(
      c.add_mis_gate(GateKind::kNor3, "x", {a, b, a},
                     std::make_unique<HybridGateChannel>(
                         GateParams::nand2_reference())),
      AssertionError);
}

}  // namespace
}  // namespace charlie::sim
