#include "sim/nor_models.hpp"

#include <gtest/gtest.h>

#include "sim/run_channel.hpp"

namespace charlie::sim {
namespace {

const SisNorDelays kDelays{50e-12, 40e-12};

TEST(NorModels, AllFactoriesProduceWorkingGates) {
  const waveform::DigitalTrace a(false, {1e-9, 2e-9});
  const waveform::DigitalTrace b(false, {});
  auto check = [&](std::unique_ptr<GateChannel> gate, const char* name) {
    const auto out = run_gate_channel(*gate, a, b, 0.0, 3e-9);
    EXPECT_TRUE(out.initial_value()) << name;
    EXPECT_EQ(out.n_transitions(), 2u) << name;
    EXPECT_FALSE(out.is_rising(0)) << name;
  };
  check(make_inertial_nor(kDelays), "inertial");
  check(make_pure_nor(kDelays), "pure");
  check(make_exp_nor(kDelays, 20e-12), "exp");
  check(make_sumexp_nor(kDelays, 20e-12), "sumexp");
}

TEST(NorModels, ExpNorSisDelaysHitTargets) {
  auto gate = make_exp_nor(kDelays, 20e-12);
  const waveform::DigitalTrace a(false, {1e-9, 3e-9});
  const waveform::DigitalTrace b(false, {});
  const auto out = run_gate_channel(*gate, a, b, 0.0, 5e-9);
  ASSERT_EQ(out.n_transitions(), 2u);
  EXPECT_NEAR(out.transitions()[0] - 1e-9, kDelays.fall, 1e-15);
  EXPECT_NEAR(out.transitions()[1] - 3e-9, kDelays.rise, 1e-15);
}

TEST(NorModels, SumExpNorSisDelaysHitTargets) {
  auto gate = make_sumexp_nor(kDelays, 20e-12);
  const waveform::DigitalTrace a(false, {1e-9, 3e-9});
  const waveform::DigitalTrace b(false, {});
  const auto out = run_gate_channel(*gate, a, b, 0.0, 5e-9);
  ASSERT_EQ(out.n_transitions(), 2u);
  EXPECT_NEAR(out.transitions()[0] - 1e-9, kDelays.fall, 1e-14);
  EXPECT_NEAR(out.transitions()[1] - 3e-9, kDelays.rise, 1e-14);
}

TEST(NorModels, SisModelsBlindToWhichInputSwitched) {
  // The paper's central criticism: a single-input output channel gives the
  // same delay regardless of which input caused the transition.
  auto gate = make_exp_nor(kDelays, 20e-12);
  const waveform::DigitalTrace a1(false, {1e-9});
  const waveform::DigitalTrace b1(false, {});
  const auto out_a = run_gate_channel(*gate, a1, b1, 0.0, 2e-9);
  auto gate2 = make_exp_nor(kDelays, 20e-12);
  const auto out_b = run_gate_channel(*gate2, b1, a1, 0.0, 2e-9);
  ASSERT_EQ(out_a.n_transitions(), 1u);
  ASSERT_EQ(out_b.n_transitions(), 1u);
  EXPECT_DOUBLE_EQ(out_a.transitions()[0], out_b.transitions()[0]);
}

TEST(NorModels, SisModelsBlindToMis) {
  // Simultaneous switching gives the same delay as single switching for a
  // SIS model (no Charlie effect) -- establishes the contrast the hybrid
  // channel is designed to fix.
  auto lone = make_inertial_nor(kDelays);
  const waveform::DigitalTrace a(false, {1e-9});
  const waveform::DigitalTrace none(false, {});
  const auto out_lone = run_gate_channel(*lone, a, none, 0.0, 2e-9);
  auto both = make_inertial_nor(kDelays);
  const auto out_both = run_gate_channel(*both, a, a, 0.0, 2e-9);
  ASSERT_EQ(out_lone.n_transitions(), 1u);
  ASSERT_EQ(out_both.n_transitions(), 1u);
  EXPECT_DOUBLE_EQ(out_lone.transitions()[0], out_both.transitions()[0]);
}

TEST(NorModels, PureDelayPassesGlitchInertialSwallowsIt) {
  const double width = 10e-12;  // far below the ~40-50 ps delays
  const waveform::DigitalTrace a(false, {1e-9, 1e-9 + width});
  const waveform::DigitalTrace b(false, {});
  auto pure = make_pure_nor(kDelays);
  const auto out_pure = run_gate_channel(*pure, a, b, 0.0, 2e-9);
  EXPECT_EQ(out_pure.n_transitions(), 2u);  // glitch propagates
  auto inertial = make_inertial_nor(kDelays);
  const auto out_inertial = run_gate_channel(*inertial, a, b, 0.0, 2e-9);
  EXPECT_EQ(out_inertial.n_transitions(), 0u);  // glitch filtered
}

}  // namespace
}  // namespace charlie::sim
