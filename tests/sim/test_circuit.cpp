#include "sim/circuit.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "sim/hybrid_nor_channel.hpp"
#include "sim/inertial.hpp"
#include "sim/pure_delay.hpp"
#include "util/error.hpp"

namespace charlie::sim {
namespace {

TEST(GateEval, TruthTables) {
  const bool f = false;
  const bool t = true;
  {
    const bool in[] = {f};
    EXPECT_FALSE(eval_gate(GateKind::kBuf, in));
    EXPECT_TRUE(eval_gate(GateKind::kInv, in));
  }
  {
    const bool in[] = {t, f};
    EXPECT_FALSE(eval_gate(GateKind::kAnd2, in));
    EXPECT_TRUE(eval_gate(GateKind::kOr2, in));
    EXPECT_TRUE(eval_gate(GateKind::kNand2, in));
    EXPECT_FALSE(eval_gate(GateKind::kNor2, in));
    EXPECT_TRUE(eval_gate(GateKind::kXor2, in));
  }
  {
    const bool in[] = {f, f};
    EXPECT_TRUE(eval_gate(GateKind::kNor2, in));
    EXPECT_FALSE(eval_gate(GateKind::kXor2, in));
  }
}

TEST(Circuit, SingleInverter) {
  Circuit c;
  const auto in = c.add_input("in");
  const auto out = c.add_gate(GateKind::kInv, "out", {in},
                              std::make_unique<PureDelayChannel>(10e-12));
  const waveform::DigitalTrace stim(false, {1e-9, 2e-9});
  const auto result = c.simulate({stim}, 0.0, 3e-9);
  const auto& trace = result.trace(out);
  EXPECT_TRUE(trace.initial_value());
  ASSERT_EQ(trace.n_transitions(), 2u);
  EXPECT_NEAR(trace.transitions()[0], 1e-9 + 10e-12, 1e-15);
  EXPECT_FALSE(trace.is_rising(0));
}

TEST(Circuit, InverterChainAccumulatesDelay) {
  Circuit c;
  const auto in = c.add_input("in");
  auto prev = in;
  for (int i = 0; i < 4; ++i) {
    prev = c.add_gate(GateKind::kInv, "n" + std::to_string(i), {prev},
                      std::make_unique<PureDelayChannel>(5e-12));
  }
  const waveform::DigitalTrace stim(false, {1e-9});
  const auto result = c.simulate({stim}, 0.0, 2e-9);
  const auto& out = result.trace(prev);
  ASSERT_EQ(out.n_transitions(), 1u);
  EXPECT_NEAR(out.transitions()[0], 1e-9 + 4 * 5e-12, 1e-15);
  // Even number of inversions: same polarity as the input.
  EXPECT_TRUE(out.is_rising(0));
}

TEST(Circuit, SteadyStateSettlesThroughLogic) {
  // in=1 feeding INV -> 0 -> NOR(0, in2=0) -> 1 at t=0.
  Circuit c;
  const auto in1 = c.add_input("in1");
  const auto in2 = c.add_input("in2");
  const auto inv = c.add_gate(GateKind::kInv, "inv", {in1},
                              std::make_unique<PureDelayChannel>(5e-12));
  const auto nor =
      c.add_gate(GateKind::kNor2, "nor", {inv, in2},
                 std::make_unique<InertialChannel>(7e-12, 7e-12));
  const waveform::DigitalTrace s1(true, {});
  const waveform::DigitalTrace s2(false, {});
  const auto result = c.simulate({s1, s2}, 0.0, 1e-9);
  EXPECT_FALSE(result.trace(inv).initial_value());
  EXPECT_TRUE(result.trace(nor).initial_value());
  EXPECT_EQ(result.trace(nor).n_transitions(), 0u);
}

TEST(Circuit, ReconvergentFanoutGlitch) {
  // Classic glitch generator: in -> INV -> AND(in, inv(in)).
  // A rising input makes the AND see (1,1) briefly -- for the inverter
  // delay -- so a pure-delay AND emits a glitch; an inertial AND with a
  // larger delay does not.
  auto build = [](std::unique_ptr<SisChannel> and_channel) {
    auto c = std::make_unique<Circuit>();
    const auto in = c->add_input("in");
    const auto inv = c->add_gate(GateKind::kInv, "inv", {in},
                                 std::make_unique<PureDelayChannel>(20e-12));
    c->add_gate(GateKind::kAnd2, "out", {in, inv}, std::move(and_channel));
    return c;
  };
  const waveform::DigitalTrace stim(false, {1e-9});

  auto c_pure = build(std::make_unique<PureDelayChannel>(5e-12));
  const auto r_pure = c_pure->simulate({stim}, 0.0, 2e-9);
  EXPECT_EQ(r_pure.trace(c_pure->find_net("out")).n_transitions(), 2u);

  auto c_inertial = build(std::make_unique<InertialChannel>(30e-12, 30e-12));
  const auto r_inertial = c_inertial->simulate({stim}, 0.0, 2e-9);
  EXPECT_EQ(r_inertial.trace(c_inertial->find_net("out")).n_transitions(),
            0u);
}

TEST(Circuit, MisAwareNorInsideCircuit) {
  const auto params = core::NorParams::paper_table1();
  Circuit c;
  const auto a = c.add_input("a");
  const auto b = c.add_input("b");
  const auto out =
      c.add_nor2_mis("out", a, b, std::make_unique<HybridNorChannel>(params));
  // Simultaneous rising inputs: Charlie speed-up vs. lone input.
  const waveform::DigitalTrace both(false, {1e-9});
  const auto r_both = c.simulate({both, both}, 0.0, 2e-9);
  const double t_both = r_both.trace(out).transitions().at(0);

  Circuit c2;
  const auto a2 = c2.add_input("a");
  const auto b2 = c2.add_input("b");
  const auto out2 = c2.add_nor2_mis("out", a2, b2,
                                    std::make_unique<HybridNorChannel>(params));
  const waveform::DigitalTrace lone(false, {1e-9});
  const waveform::DigitalTrace quiet(false, {});
  const auto r_lone = c2.simulate({lone, quiet}, 0.0, 2e-9);
  const double t_lone = r_lone.trace(out2).transitions().at(0);
  EXPECT_LT(t_both, t_lone - 5e-12);
}

TEST(Circuit, TwoStageNorChain) {
  // NOR(a,b) -> NOR(x, c): event propagation across MIS-aware stages.
  const auto params = core::NorParams::paper_table1();
  Circuit c;
  const auto a = c.add_input("a");
  const auto b = c.add_input("b");
  const auto cc = c.add_input("c");
  const auto x =
      c.add_nor2_mis("x", a, b, std::make_unique<HybridNorChannel>(params));
  const auto y =
      c.add_nor2_mis("y", x, cc, std::make_unique<HybridNorChannel>(params));
  // a=b=0 initially -> x=1 -> y=0 (c=0). A rises: x falls, y rises.
  const waveform::DigitalTrace sa(false, {1e-9});
  const waveform::DigitalTrace quiet(false, {});
  const auto r = c.simulate({sa, quiet, quiet}, 0.0, 3e-9);
  ASSERT_EQ(r.trace(x).n_transitions(), 1u);
  ASSERT_EQ(r.trace(y).n_transitions(), 1u);
  EXPECT_FALSE(r.trace(x).is_rising(0));
  EXPECT_TRUE(r.trace(y).is_rising(0));
  EXPECT_GT(r.trace(y).transitions()[0], r.trace(x).transitions()[0]);
}

TEST(Circuit, WindowBoundarySemantics) {
  // The event window is (t_begin, t_end]: a stimulus transition at exactly
  // t_begin is folded into the steady-state initialization (value_at
  // includes it), not replayed as an event.
  Circuit c;
  const auto in = c.add_input("in");
  const auto out = c.add_gate(GateKind::kInv, "out", {in},
                              std::make_unique<PureDelayChannel>(10e-12));
  const waveform::DigitalTrace stim(false, {1e-9, 2e-9});
  const auto result = c.simulate({stim}, 1e-9, 3e-9);
  // The rising edge at exactly t_begin = 1 ns is initial state: input
  // starts high, inverter starts low, and no transition is recorded for it.
  EXPECT_TRUE(result.trace(in).initial_value());
  EXPECT_EQ(result.trace(in).n_transitions(), 1u);  // only the 2 ns edge
  EXPECT_FALSE(result.trace(out).initial_value());
  ASSERT_EQ(result.trace(out).n_transitions(), 1u);
  EXPECT_NEAR(result.trace(out).transitions()[0], 2e-9 + 10e-12, 1e-15);

  // A transition at exactly t_end is still an event; its delayed gate
  // response past t_end is dropped.
  Circuit c2;
  const auto in2 = c2.add_input("in");
  c2.add_gate(GateKind::kInv, "out", {in2},
              std::make_unique<PureDelayChannel>(10e-12));
  const auto r2 = c2.simulate({stim}, 0.0, 2e-9);
  EXPECT_EQ(r2.trace(in2).n_transitions(), 2u);
  EXPECT_EQ(r2.trace(c2.find_net("out")).n_transitions(), 1u);
}

TEST(Circuit, ValidationErrors) {
  Circuit c;
  const auto in = c.add_input("in");
  EXPECT_THROW(c.add_input("in"), ConfigError);  // duplicate name
  EXPECT_THROW(c.find_net("nope"), ConfigError);
  // Wrong stimulus count.
  c.add_gate(GateKind::kInv, "out", {in},
             std::make_unique<PureDelayChannel>(1e-12));
  EXPECT_THROW(c.simulate({}, 0.0, 1e-9), AssertionError);
}

}  // namespace
}  // namespace charlie::sim
