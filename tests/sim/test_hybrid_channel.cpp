#include "sim/hybrid_nor_channel.hpp"

#include <gtest/gtest.h>

#include "core/delay_model.hpp"
#include "util/error.hpp"

namespace charlie::sim {
namespace {

class HybridChannelFixture : public ::testing::Test {
 protected:
  const core::NorParams params_ = core::NorParams::paper_table1();
  const core::NorDelayModel model_{params_};
};

TEST_F(HybridChannelFixture, InitialStateFollowsInputs) {
  HybridNorChannel ch(params_);
  ch.initialize(0.0, {false, false});
  EXPECT_TRUE(ch.initial_output());
  EXPECT_EQ(ch.mode(), core::Mode::kS00);
  ch.initialize(0.0, {true, false});
  EXPECT_FALSE(ch.initial_output());
  EXPECT_EQ(ch.mode(), core::Mode::kS10);
}

TEST_F(HybridChannelFixture, SisFallingDelayMatchesDelayModel) {
  HybridNorChannel ch(params_);
  ch.initialize(0.0, {false, false});
  ch.on_input(1e-9, 1, true);  // B rises alone
  const auto p = ch.pending();
  ASSERT_TRUE(p.has_value());
  EXPECT_FALSE(p->value);
  EXPECT_NEAR(p->t - 1e-9, model_.falling_sis_b_first(), 1e-15);
}

TEST_F(HybridChannelFixture, MisFallingDelayMatchesDelayModel) {
  for (double delta : {-40e-12, -10e-12, 0.0, 10e-12, 40e-12}) {
    HybridNorChannel ch(params_);
    ch.initialize(0.0, {false, false});
    const double t0 = 1e-9;
    if (delta >= 0.0) {
      ch.on_input(t0, 0, true);
      if (delta > 0.0) ch.on_input(t0 + delta, 1, true);
      else ch.on_input(t0, 1, true);
    } else {
      ch.on_input(t0, 1, true);
      ch.on_input(t0 - delta, 0, true);
    }
    const auto p = ch.pending();
    ASSERT_TRUE(p.has_value()) << "delta=" << delta;
    EXPECT_NEAR(p->t - t0, model_.falling_delay(delta).delay, 1e-14)
        << "delta=" << delta;
  }
}

TEST_F(HybridChannelFixture, MisRisingDelayMatchesDelayModel) {
  // Start in (1,1) with drained history; both inputs fall with separation.
  for (double delta : {-40e-12, 0.0, 40e-12}) {
    HybridNorChannel ch(params_);
    ch.initialize(0.0, {true, true});  // V_N = GND worst case
    const double t0 = 1e-9;
    double t_last = t0;
    if (delta >= 0.0) {
      ch.on_input(t0, 0, false);
      t_last = t0 + delta;
      if (delta > 0.0) ch.on_input(t_last, 1, false);
      else ch.on_input(t0, 1, false);
    } else {
      ch.on_input(t0, 1, false);
      t_last = t0 - delta;
      ch.on_input(t_last, 0, false);
    }
    const auto p = ch.pending();
    ASSERT_TRUE(p.has_value()) << "delta=" << delta;
    EXPECT_TRUE(p->value);
    EXPECT_NEAR(p->t - t_last, model_.rising_delay(delta, 0.0).delay, 1e-14)
        << "delta=" << delta;
  }
}

TEST_F(HybridChannelFixture, GlitchCancellation) {
  // A rises then falls quickly: if the input returns before V_O reaches
  // the threshold, no output event survives.
  HybridNorChannel ch(params_);
  ch.initialize(0.0, {false, false});
  ch.on_input(1e-9, 0, true);
  ASSERT_TRUE(ch.pending().has_value());
  ch.on_input(1e-9 + 2e-12, 0, false);  // effective before the crossing
  // The (0,0) mode pulls V_O back up before it reaches VDD/2: the pending
  // event must be gone or rescheduled as unreachable -> none.
  EXPECT_FALSE(ch.pending().has_value());
}

TEST_F(HybridChannelFixture, CommittedCrossingSurvivesLateReversal) {
  HybridNorChannel ch(params_);
  ch.initialize(0.0, {false, false});
  ch.on_input(1e-9, 0, true);
  const auto p = ch.pending();
  ASSERT_TRUE(p.has_value());
  // Reversal 5 ps before the crossing, but delta_min = 18 ps defers its
  // effect past the crossing: the falling output event must survive,
  // followed by a rising one.
  ch.on_input(p->t - 5e-12, 0, false);
  const auto committed = ch.pending();
  ASSERT_TRUE(committed.has_value());
  EXPECT_DOUBLE_EQ(committed->t, p->t);
  EXPECT_FALSE(committed->value);
  ch.on_fire(*committed);
  const auto rise = ch.pending();
  ASSERT_TRUE(rise.has_value());
  EXPECT_TRUE(rise->value);
}

TEST_F(HybridChannelFixture, SharedTablesMatchPrivateTables) {
  // Channels sharing one precomputed table behave identically to channels
  // that derive their own.
  const auto tables = core::NorModeTables::make(params_);
  HybridNorChannel shared1(tables);
  HybridNorChannel shared2(tables);
  HybridNorChannel owned(params_);
  EXPECT_EQ(shared1.tables().get(), shared2.tables().get());
  for (HybridNorChannel* ch : {&shared1, &owned}) {
    ch->initialize(0.0, {false, false});
    ch->on_input(1e-9, 0, true);
  }
  ASSERT_TRUE(shared1.pending().has_value());
  ASSERT_TRUE(owned.pending().has_value());
  EXPECT_DOUBLE_EQ(shared1.pending()->t, owned.pending()->t);
}

TEST_F(HybridChannelFixture, MultipleCommittedCrossingsSurviveLateInput) {
  // Drive A up (falling crossing fires), then A down (rising crossing
  // scheduled), then let B arrive only after the rising crossing has
  // physically happened too: both crossings are past and the second input
  // promotes the live rising crossing to the committed queue. Every
  // committed event must then fire in order with matching payloads.
  HybridNorChannel ch(params_);
  ch.initialize(0.0, {false, false});
  ch.on_input(1e-9, 0, true);
  const auto fall = ch.pending();
  ASSERT_TRUE(fall.has_value());
  EXPECT_FALSE(fall->value);
  ch.on_fire(*fall);
  ch.on_input(2e-9, 0, false);
  const auto rise = ch.pending();
  ASSERT_TRUE(rise.has_value());
  EXPECT_TRUE(rise->value);
  // B rises 1 ps before the rising crossing: delta_min defers its effect
  // past it, so the crossing is committed and survives, followed by the
  // falling crossing that B itself causes.
  ch.on_input(rise->t - 1e-12, 1, true);
  const auto committed = ch.pending();
  ASSERT_TRUE(committed.has_value());
  EXPECT_TRUE(committed->value);
  EXPECT_DOUBLE_EQ(committed->t, rise->t);
  ch.on_fire(*committed);
  const auto fall2 = ch.pending();
  ASSERT_TRUE(fall2.has_value());
  EXPECT_FALSE(fall2->value);
  EXPECT_GT(fall2->t, rise->t);
}

TEST_F(HybridChannelFixture, OnFireMismatchFailsLoudly) {
  // Engine/channel desync must be detected, not silently absorbed.
  HybridNorChannel ch(params_);
  ch.initialize(0.0, {false, false});
  ch.on_input(1e-9, 0, true);
  const auto p = ch.pending();
  ASSERT_TRUE(p.has_value());
  PendingEvent wrong_time = *p;
  wrong_time.t += 1e-12;
  EXPECT_THROW(ch.on_fire(wrong_time), AssertionError);
  PendingEvent wrong_value = *p;
  wrong_value.value = !wrong_value.value;
  EXPECT_THROW(ch.on_fire(wrong_value), AssertionError);
  // The matching event still fires cleanly.
  ch.on_fire(*p);
  // Committed-path mismatch: commit a crossing, then fire a wrong event.
  ch.on_input(2e-9, 0, false);
  const auto rise = ch.pending();
  ASSERT_TRUE(rise.has_value());
  ch.on_input(rise->t - 1e-12, 1, true);  // promotes to committed_
  PendingEvent bogus = *ch.pending();
  bogus.t -= 1e-12;
  EXPECT_THROW(ch.on_fire(bogus), AssertionError);
}

TEST_F(HybridChannelFixture, StateQueryEvolvesContinuously) {
  HybridNorChannel ch(params_);
  ch.initialize(0.0, {false, false});
  EXPECT_NEAR(ch.state_at(0.5e-9).y, params_.vdd, 1e-9);
  ch.on_input(1e-9, 0, true);
  const double te = 1e-9 + params_.delta_min;
  // Just after the effective switch the output barely moved.
  EXPECT_NEAR(ch.state_at(te).y, params_.vdd, 1e-6);
  EXPECT_LT(ch.state_at(te + 30e-12).y, params_.vdd * 0.8);
}

TEST_F(HybridChannelFixture, OutOfOrderInputThrows) {
  HybridNorChannel ch(params_);
  ch.initialize(0.0, {false, false});
  ch.on_input(2e-9, 0, true);
  EXPECT_THROW(ch.on_input(1e-9, 1, true), AssertionError);
}

TEST_F(HybridChannelFixture, MisSpeedupVisibleThroughChannel) {
  // Simultaneous rising inputs produce an earlier output event than a
  // lone rising input -- the Charlie effect surfacing in simulation.
  HybridNorChannel lone(params_);
  lone.initialize(0.0, {false, false});
  lone.on_input(1e-9, 1, true);
  HybridNorChannel both(params_);
  both.initialize(0.0, {false, false});
  both.on_input(1e-9, 0, true);
  both.on_input(1e-9, 1, true);
  ASSERT_TRUE(lone.pending().has_value());
  ASSERT_TRUE(both.pending().has_value());
  EXPECT_LT(both.pending()->t, lone.pending()->t - 5e-12);
}

}  // namespace
}  // namespace charlie::sim
