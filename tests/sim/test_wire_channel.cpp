// sim::WireChannel: analog state handoff semantics -- step-response
// crossings, short-pulse attenuation, state continuity across drive
// switches, commitment of physically decided crossings, and piecewise
// agreement with RK45 through a drive sequence.
#include "sim/wire_channel.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "ode/rk45.hpp"
#include "sim/run_channel.hpp"
#include "wire/wire_params.hpp"

namespace charlie::sim {
namespace {

std::shared_ptr<const wire::WireModeTables> reference_tables() {
  static const auto tables =
      wire::WireModeTables::make(wire::WireParams::reference());
  return tables;
}

TEST(WireChannel, InitializeSettlesAtTheDrivingRail) {
  WireChannel ch(reference_tables());
  ch.initialize(0.0, false);
  EXPECT_FALSE(ch.initial_output());
  EXPECT_FALSE(ch.pending().has_value());
  EXPECT_NEAR(ch.state_at(1e-9).y, 0.0, 1e-12);

  ch.initialize(0.0, true);
  EXPECT_TRUE(ch.initial_output());
  EXPECT_FALSE(ch.pending().has_value());
  EXPECT_NEAR(ch.state_at(1e-9).y, 0.8, 1e-12);
}

TEST(WireChannel, StepResponseCrossingMatchesTheReducedOde) {
  // Rising step at t0: the pending crossing must solve V_out = V_th of the
  // closed-form two-exponential exactly (verified via state_at itself).
  WireChannel ch(reference_tables());
  ch.initialize(0.0, false);
  const double t0 = 100e-12;
  ch.on_input(t0, true);
  const auto pending = ch.pending();
  ASSERT_TRUE(pending.has_value());
  EXPECT_TRUE(pending->value);
  EXPECT_GT(pending->t, t0);
  const double vth = reference_tables()->vth();
  EXPECT_NEAR(ch.state_at(pending->t).y, vth, 1e-9);
  // The crossing lands in the physically sensible window: after a tenth of
  // the Elmore delay, before ten of them.
  const double elmore = reference_tables()->elmore_delay();
  EXPECT_GT(pending->t - t0, 0.1 * elmore);
  EXPECT_LT(pending->t - t0, 10.0 * elmore);
}

TEST(WireChannel, ShortPulsesAttenuateInsteadOfPropagating) {
  // A drive pulse much shorter than the wire's RC never charges the far
  // end to V_th: no output events at all -- the analog analogue of glitch
  // suppression, with no ad-hoc rejection rule.
  const double elmore = reference_tables()->elmore_delay();
  WireChannel ch(reference_tables());
  ch.initialize(0.0, false);
  ch.on_input(100e-12, true);
  ch.on_input(100e-12 + 0.05 * elmore, false);
  EXPECT_FALSE(ch.pending().has_value());

  // A pulse a few Elmore delays long passes through as two events.
  const waveform::DigitalTrace drive(false,
                                     {100e-12, 100e-12 + 4.0 * elmore});
  WireChannel ch2(reference_tables());
  const auto out = run_sis_channel(ch2, drive, 0.0, 2e-9);
  EXPECT_EQ(out.n_transitions(), 2u);
}

TEST(WireChannel, HandoffKeepsTheAnalogStateContinuous) {
  // Flip the drive mid-flight: the state just before and just after the
  // switch must agree (the handoff carries (u, V_out) across the mode
  // change untouched).
  WireChannel ch(reference_tables());
  ch.initialize(0.0, false);
  ch.on_input(100e-12, true);
  const double t_flip = 130e-12;
  const ode::Vec2 before = ch.state_at(t_flip);
  ch.on_input(t_flip, false);
  const ode::Vec2 after = ch.state_at(t_flip);
  EXPECT_NEAR(before.x, after.x, 1e-15);
  EXPECT_NEAR(before.y, after.y, 1e-15);
}

TEST(WireChannel, DecidedCrossingsSurviveLaterInputs) {
  // Let the rising crossing happen, then withdraw the drive *after* the
  // crossing time: the output event is physically decided and must stay
  // (committed), followed by the falling response.
  WireChannel ch(reference_tables());
  ch.initialize(0.0, false);
  ch.on_input(100e-12, true);
  const auto rising = ch.pending();
  ASSERT_TRUE(rising.has_value());
  const double t_after = rising->t + 5e-12;
  ch.on_input(t_after, false);
  const auto still = ch.pending();
  ASSERT_TRUE(still.has_value());
  EXPECT_EQ(still->t, rising->t);
  EXPECT_TRUE(still->value);
  // Fire it; the falling crossing of the new drive state becomes live.
  ch.on_fire(*still);
  const auto falling = ch.pending();
  ASSERT_TRUE(falling.has_value());
  EXPECT_FALSE(falling->value);
  EXPECT_GT(falling->t, t_after);
}

TEST(WireChannel, PiecewiseTrajectoryMatchesRk45) {
  // Integrate the reduced 2-state ODE through a drive sequence with RK45
  // and compare against the channel's closed-form state at several probe
  // times (same tolerance regime as the gate-mode RK45 cross-check).
  const auto tables = reference_tables();
  const wire::WireParams& p = tables->params();
  WireChannel ch(tables);
  ch.initialize(0.0, false);
  const double t1 = 50e-12;
  const double t2 = 120e-12;  // mid-flight flip
  const double t3 = 200e-12;

  auto rk45_to = [&](const ode::Vec2& x0, bool high,
                     double dt) -> ode::Vec2 {
    const auto& mt = tables->drive_table(high);
    const ode::OdeRhs rhs = [&](double, std::span<const double> x,
                                std::span<double> dx) {
      const ode::Vec2 d = mt.ode.derivative({x[0], x[1]});
      dx[0] = d.x;
      dx[1] = d.y;
    };
    ode::Rk45Options opts;
    opts.rtol = 1e-11;
    opts.atol = 1e-14;
    const double x0_arr[] = {x0.x, x0.y};
    const auto r = ode::integrate_rk45(rhs, x0_arr, 0.0, dt, opts);
    return {r.x_final[0], r.x_final[1]};
  };

  ch.on_input(t1, true);
  ch.on_input(t2, false);
  ode::Vec2 x = tables->drive_table(false).steady;
  x = rk45_to(x, true, t2 - t1);
  EXPECT_NEAR(ch.state_at(t2).x, x.x, 1e-8);
  EXPECT_NEAR(ch.state_at(t2).y, x.y, 1e-8);
  x = rk45_to(x, false, t3 - t2);
  EXPECT_NEAR(ch.state_at(t3).x, x.x, 1e-8);
  EXPECT_NEAR(ch.state_at(t3).y, x.y, 1e-8);
  (void)p;
}

TEST(WireChannel, DriveShapeCorrectionShiftsTheSwitchToTheEdgeCentroid) {
  // t_drive defers every drive switch by (1 - ln 2) t_drive; with an
  // otherwise identical geometry the whole trajectory translates by
  // exactly that much.
  wire::WireParams p = wire::WireParams::reference();
  WireChannel step(wire::WireModeTables::make(p));
  p.t_drive = 30e-12;
  WireChannel shaped(wire::WireModeTables::make(p));
  const double shift = (1.0 - std::log(2.0)) * 30e-12;

  step.initialize(0.0, false);
  shaped.initialize(0.0, false);
  step.on_input(100e-12, true);
  shaped.on_input(100e-12, true);
  const auto a = step.pending();
  const auto b = shaped.pending();
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  EXPECT_NEAR(b->t - a->t, shift, 1e-16);
}

TEST(WireChannel, SharedTablesAcrossInstances) {
  const auto tables = reference_tables();
  WireChannel a(tables);
  WireChannel b(tables);
  EXPECT_EQ(a.wire_tables().get(), b.wire_tables().get());
}

}  // namespace
}  // namespace charlie::sim
