#include "ode/eigen2.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/modes.hpp"
#include "core/nor_params.hpp"

namespace charlie::ode {
namespace {

// || (m - lambda I) v || should vanish for an eigenpair.
double residual(const Mat2& m, double lambda, const Vec2& v) {
  const Vec2 r = m * v - lambda * v;
  return r.norm();
}

TEST(Eigen2, DiagonalMatrix) {
  const Mat2 m{-1.0, 0.0, 0.0, -3.0};
  const Eigen2 e = eigen_decompose(m);
  EXPECT_EQ(e.kind, EigenKind::kRealDistinct);
  EXPECT_DOUBLE_EQ(e.lambda1, -3.0);
  EXPECT_DOUBLE_EQ(e.lambda2, -1.0);
  EXPECT_LT(residual(m, e.lambda1, e.v1), 1e-12);
  EXPECT_LT(residual(m, e.lambda2, e.v2), 1e-12);
}

TEST(Eigen2, SymmetricMatrix) {
  const Mat2 m{2.0, 1.0, 1.0, 2.0};
  const Eigen2 e = eigen_decompose(m);
  EXPECT_EQ(e.kind, EigenKind::kRealDistinct);
  EXPECT_DOUBLE_EQ(e.lambda1, 1.0);
  EXPECT_DOUBLE_EQ(e.lambda2, 3.0);
  EXPECT_LT(residual(m, e.lambda1, e.v1), 1e-12);
  EXPECT_LT(residual(m, e.lambda2, e.v2), 1e-12);
}

TEST(Eigen2, ScaledIdentityIsRepeatedDiagonalizable) {
  const Mat2 m{-2.0, 0.0, 0.0, -2.0};
  const Eigen2 e = eigen_decompose(m);
  EXPECT_EQ(e.kind, EigenKind::kRealRepeated);
  EXPECT_DOUBLE_EQ(e.lambda1, -2.0);
}

TEST(Eigen2, JordanBlockIsDefective) {
  const Mat2 m{-1.0, 1.0, 0.0, -1.0};
  const Eigen2 e = eigen_decompose(m);
  EXPECT_EQ(e.kind, EigenKind::kRealDefective);
  EXPECT_DOUBLE_EQ(e.lambda1, -1.0);
  EXPECT_LT(residual(m, e.lambda1, e.v1), 1e-12);
}

TEST(Eigen2, RotationMatrixIsComplexPair) {
  const Mat2 m{0.0, -1.0, 1.0, 0.0};
  const Eigen2 e = eigen_decompose(m);
  EXPECT_EQ(e.kind, EigenKind::kComplexPair);
  EXPECT_DOUBLE_EQ(e.re, 0.0);
  EXPECT_DOUBLE_EQ(e.im, 1.0);
  EXPECT_FALSE(e.is_real());
}

TEST(Eigen2, VietaRelationsHold) {
  const Mat2 m{-4.0, 2.0, 1.0, -7.0};
  const Eigen2 e = eigen_decompose(m);
  ASSERT_EQ(e.kind, EigenKind::kRealDistinct);
  EXPECT_NEAR(e.lambda1 + e.lambda2, m.trace(), 1e-12);
  EXPECT_NEAR(e.lambda1 * e.lambda2, m.det(), 1e-12);
}

TEST(Eigen2, IsHurwitz) {
  EXPECT_TRUE(is_hurwitz(eigen_decompose(Mat2{-1.0, 0.0, 0.0, -2.0})));
  EXPECT_FALSE(is_hurwitz(eigen_decompose(Mat2{1.0, 0.0, 0.0, -2.0})));
  EXPECT_TRUE(is_hurwitz(eigen_decompose(Mat2{-1.0, -1.0, 1.0, -1.0})));
  EXPECT_FALSE(is_hurwitz(eigen_decompose(Mat2{0.0, -1.0, 1.0, 0.0})));
}

TEST(Eigen2, StiffSpectrumStaysAccurate) {
  // Eigenvalue magnitudes spread over 6 decades (as produced by extreme
  // parametrizations of the NOR model).
  const Mat2 m{-1e12, 1e12, 1e6, -2e6};
  const Eigen2 e = eigen_decompose(m);
  ASSERT_EQ(e.kind, EigenKind::kRealDistinct);
  EXPECT_NEAR((e.lambda1 + e.lambda2) / m.trace(), 1.0, 1e-12);
  EXPECT_NEAR(e.lambda1 * e.lambda2 / m.det(), 1.0, 1e-9);
}

// Every mode matrix of the NOR model must have real, non-positive
// eigenvalues (passive RC network) -- the property the paper's closed-form
// solutions rest on.
class ModeSpectraReal : public ::testing::TestWithParam<core::Mode> {};

TEST_P(ModeSpectraReal, RealStableSpectrum) {
  const auto params = core::NorParams::paper_table1();
  const AffineOde2 sys = core::mode_ode(GetParam(), params);
  const Eigen2& e = sys.eigen();
  EXPECT_TRUE(e.is_real());
  EXPECT_LE(e.lambda1, 1e-6);
  EXPECT_LE(e.lambda2, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(AllModes, ModeSpectraReal,
                         ::testing::ValuesIn(core::kAllModes),
                         [](const auto& info) {
                           switch (info.param) {
                             case core::Mode::kS00: return "S00";
                             case core::Mode::kS01: return "S01";
                             case core::Mode::kS10: return "S10";
                             default: return info.param == core::Mode::kS10
                                          ? "S10" : "S11";
                           }
                         });

}  // namespace
}  // namespace charlie::ode
