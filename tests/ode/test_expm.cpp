#include "ode/expm.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace charlie::ode {
namespace {

// Reference: scaling-and-squaring with a Taylor series.
Mat2 expm_reference(const Mat2& m, double t) {
  Mat2 a = m * t;
  int squarings = 0;
  while (a.norm_inf() > 0.5) {
    a = a * 0.5;
    ++squarings;
  }
  Mat2 result = Mat2::identity();
  Mat2 term = Mat2::identity();
  for (int k = 1; k <= 20; ++k) {
    term = term * a * (1.0 / k);
    result = result + term;
  }
  for (int s = 0; s < squarings; ++s) result = result * result;
  return result;
}

void expect_mat_near(const Mat2& a, const Mat2& b, double tol) {
  EXPECT_NEAR(a.a, b.a, tol);
  EXPECT_NEAR(a.b, b.b, tol);
  EXPECT_NEAR(a.c, b.c, tol);
  EXPECT_NEAR(a.d, b.d, tol);
}

TEST(Expm, IdentityAtZeroTime) {
  const Mat2 m{-3.0, 1.0, 2.0, -5.0};
  expect_mat_near(expm(m, 0.0), Mat2::identity(), 1e-15);
}

TEST(Expm, MatchesReferenceDistinct) {
  const Mat2 m{-3.0, 1.0, 2.0, -5.0};
  for (double t : {0.01, 0.1, 0.5, 1.0, 2.0}) {
    expect_mat_near(expm(m, t), expm_reference(m, t), 1e-10);
  }
}

TEST(Expm, MatchesReferenceDefective) {
  const Mat2 m{-1.0, 1.0, 0.0, -1.0};  // Jordan block
  for (double t : {0.1, 1.0, 3.0}) {
    expect_mat_near(expm(m, t), expm_reference(m, t), 1e-10);
  }
}

TEST(Expm, MatchesReferenceComplexPair) {
  const Mat2 m{-0.5, -2.0, 2.0, -0.5};
  for (double t : {0.1, 1.0, 4.0}) {
    expect_mat_near(expm(m, t), expm_reference(m, t), 1e-9);
  }
}

TEST(Expm, SemigroupProperty) {
  const Mat2 m{-2.0, 0.7, 0.3, -1.0};
  const Mat2 lhs = expm(m, 0.7) * expm(m, 0.3);
  const Mat2 rhs = expm(m, 1.0);
  expect_mat_near(lhs, rhs, 1e-12);
}

TEST(Expm, NegativeTimeInverts) {
  const Mat2 m{-2.0, 0.7, 0.3, -1.0};
  const Mat2 prod = expm(m, 1.5) * expm(m, -1.5);
  expect_mat_near(prod, Mat2::identity(), 1e-10);
}

TEST(Expm, StiffLongHorizonStaysFinite) {
  // The regression that motivated the divided-difference split: a stiff
  // NOR-mode-like matrix evolved over a long idle period must not produce
  // NaN from 0 * inf.
  const Mat2 m{-1.1e13, 1.1e13, 4e9, -8e9};
  const Mat2 e = expm(m, 1e-9);
  EXPECT_TRUE(std::isfinite(e.a));
  EXPECT_TRUE(std::isfinite(e.b));
  EXPECT_TRUE(std::isfinite(e.c));
  EXPECT_TRUE(std::isfinite(e.d));
  // A Hurwitz system decays: entries stay bounded by ~1.
  EXPECT_LT(e.norm_inf(), 2.0);
}

TEST(ExpmIntegral, MatchesNumericQuadrature) {
  const Mat2 m{-3.0, 1.0, 2.0, -5.0};
  const Eigen2 eig = eigen_decompose(m);
  const double t = 0.8;
  // Simpson quadrature of exp(m s) over [0, t].
  Mat2 acc = Mat2::zero();
  const int n = 2000;
  const double h = t / n;
  for (int i = 0; i <= n; ++i) {
    const double w = (i == 0 || i == n) ? 1.0 : (i % 2 == 1 ? 4.0 : 2.0);
    acc = acc + w * expm(m, eig, i * h);
  }
  acc = acc * (h / 3.0);
  expect_mat_near(expm_integral(m, eig, t), acc, 1e-8);
}

TEST(ExpmIntegral, DerivativeIsExpm) {
  // d/dt Phi(t) = exp(m t): check with a central difference.
  const Mat2 m{-1.0, 0.5, 0.25, -2.0};
  const Eigen2 eig = eigen_decompose(m);
  const double t = 0.6;
  const double h = 1e-6;
  const Mat2 diff =
      (expm_integral(m, eig, t + h) - expm_integral(m, eig, t - h)) *
      (1.0 / (2.0 * h));
  expect_mat_near(diff, expm(m, eig, t), 1e-7);
}

TEST(ExpmIntegral, SingularMatrixMatchesSeries) {
  // Mode (1,1) shape: one zero row. Phi(t) = t I + t^2/2 m + ...
  const Mat2 m{0.0, 0.0, 0.0, -4.0};
  const Eigen2 eig = eigen_decompose(m);
  const Mat2 phi = expm_integral(m, eig, 0.5);
  EXPECT_NEAR(phi.a, 0.5, 1e-12);                           // int of 1
  EXPECT_NEAR(phi.d, (1.0 - std::exp(-2.0)) / 4.0, 1e-12);  // int e^{-4s}
  EXPECT_NEAR(phi.b, 0.0, 1e-15);
  EXPECT_NEAR(phi.c, 0.0, 1e-15);
}

TEST(ExpmIntegral, DefectiveCase) {
  const Mat2 m{-1.0, 1.0, 0.0, -1.0};
  const Eigen2 eig = eigen_decompose(m);
  const double t = 1.2;
  // Quadrature reference.
  Mat2 acc = Mat2::zero();
  const int n = 2000;
  const double h = t / n;
  for (int i = 0; i <= n; ++i) {
    const double w = (i == 0 || i == n) ? 1.0 : (i % 2 == 1 ? 4.0 : 2.0);
    acc = acc + w * expm(m, eig, i * h);
  }
  acc = acc * (h / 3.0);
  expect_mat_near(expm_integral(m, eig, t), acc, 1e-8);
}

}  // namespace
}  // namespace charlie::ode
