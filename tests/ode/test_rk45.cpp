#include "ode/rk45.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/error.hpp"

namespace charlie::ode {
namespace {

TEST(Rk45, ExponentialDecay) {
  const OdeRhs f = [](double, std::span<const double> x,
                      std::span<double> dx) { dx[0] = -2.0 * x[0]; };
  const double x0[] = {1.0};
  const auto r = integrate_rk45(f, x0, 0.0, 3.0);
  EXPECT_NEAR(r.x_final[0], std::exp(-6.0), 1e-9);
  EXPECT_GT(r.n_accepted, 5);
}

TEST(Rk45, HarmonicOscillatorEnergyAndPhase) {
  // x'' = -x as a system; exact solution cos(t).
  const OdeRhs f = [](double, std::span<const double> x,
                      std::span<double> dx) {
    dx[0] = x[1];
    dx[1] = -x[0];
  };
  const double x0[] = {1.0, 0.0};
  Rk45Options opts;
  opts.rtol = 1e-10;
  opts.atol = 1e-12;
  const auto r = integrate_rk45(f, x0, 0.0, 10.0, opts);
  EXPECT_NEAR(r.x_final[0], std::cos(10.0), 1e-7);
  EXPECT_NEAR(r.x_final[1], -std::sin(10.0), 1e-7);
}

TEST(Rk45, TimeDependentRhs) {
  // x' = t  ->  x(t) = t^2/2.
  const OdeRhs f = [](double t, std::span<const double>,
                      std::span<double> dx) { dx[0] = t; };
  const double x0[] = {0.0};
  const auto r = integrate_rk45(f, x0, 0.0, 2.0);
  EXPECT_NEAR(r.x_final[0], 2.0, 1e-10);
}

TEST(Rk45, ToleranceControlsError) {
  const OdeRhs f = [](double, std::span<const double> x,
                      std::span<double> dx) { dx[0] = -x[0]; };
  const double x0[] = {1.0};
  Rk45Options loose;
  loose.rtol = 1e-4;
  loose.atol = 1e-6;
  Rk45Options tight;
  tight.rtol = 1e-12;
  tight.atol = 1e-14;
  const auto rl = integrate_rk45(f, x0, 0.0, 1.0, loose);
  const auto rt = integrate_rk45(f, x0, 0.0, 1.0, tight);
  const double exact = std::exp(-1.0);
  EXPECT_LT(std::fabs(rt.x_final[0] - exact),
            std::fabs(rl.x_final[0] - exact) + 1e-15);
  EXPECT_GT(rt.n_accepted, rl.n_accepted);
}

TEST(Rk45, RecordsTrajectoryWhenAsked) {
  const OdeRhs f = [](double, std::span<const double> x,
                      std::span<double> dx) { dx[0] = -x[0]; };
  const double x0[] = {1.0};
  Rk45Options opts;
  opts.record_trajectory = true;
  const auto r = integrate_rk45(f, x0, 0.0, 1.0, opts);
  ASSERT_GE(r.t.size(), 2u);
  EXPECT_DOUBLE_EQ(r.t.front(), 0.0);
  EXPECT_DOUBLE_EQ(r.t.back(), 1.0);
  EXPECT_EQ(r.t.size(), r.x.size());
  // Recorded points must be monotone in time.
  for (std::size_t i = 1; i < r.t.size(); ++i) EXPECT_GT(r.t[i], r.t[i - 1]);
}

TEST(Rk45, RejectsBadInterval) {
  const OdeRhs f = [](double, std::span<const double>, std::span<double> dx) {
    dx[0] = 0.0;
  };
  const double x0[] = {0.0};
  EXPECT_THROW(integrate_rk45(f, x0, 1.0, 0.0), AssertionError);
}

TEST(Rk45, MaxStepsGuard) {
  const OdeRhs f = [](double, std::span<const double> x,
                      std::span<double> dx) { dx[0] = -1e9 * x[0]; };
  const double x0[] = {1.0};
  Rk45Options opts;
  opts.max_steps = 3;
  EXPECT_THROW(integrate_rk45(f, x0, 0.0, 1.0, opts), ConvergenceError);
}

TEST(Rk45, StiffLinearSystemStillAccurate) {
  // Mildly stiff 2x2: rates 1 and 1000.
  const OdeRhs f = [](double, std::span<const double> x,
                      std::span<double> dx) {
    dx[0] = -1000.0 * x[0] + 999.0 * x[1];
    dx[1] = -x[1];
  };
  const double x0[] = {2.0, 1.0};
  // Exact: x1 = e^{-t}; x0 = e^{-1000t} + e^{-t}.
  const auto r = integrate_rk45(f, x0, 0.0, 1.0);
  EXPECT_NEAR(r.x_final[1], std::exp(-1.0), 1e-8);
  EXPECT_NEAR(r.x_final[0], std::exp(-1.0), 1e-6);
}

}  // namespace
}  // namespace charlie::ode
