#include "ode/linear_ode2.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/error.hpp"

namespace charlie::ode {
namespace {

TEST(AffineOde2, ScalarDecayClosedForm) {
  // x' = -2x decoupled, y' = -y + 1 (equilibrium y = 1).
  const AffineOde2 sys(Mat2{-2.0, 0.0, 0.0, -1.0}, Vec2{0.0, 1.0});
  const Vec2 x0{1.0, 0.0};
  const Vec2 x = sys.state_at(0.5, x0);
  EXPECT_NEAR(x.x, std::exp(-1.0), 1e-12);
  EXPECT_NEAR(x.y, 1.0 - std::exp(-0.5), 1e-12);
}

TEST(AffineOde2, StateAtZeroIsInitial) {
  const AffineOde2 sys(Mat2{-3.0, 1.0, 2.0, -4.0}, Vec2{1.0, -1.0});
  const Vec2 x0{0.3, 0.7};
  const Vec2 x = sys.state_at(0.0, x0);
  EXPECT_NEAR(x.x, 0.3, 1e-14);
  EXPECT_NEAR(x.y, 0.7, 1e-14);
}

TEST(AffineOde2, SolutionSatisfiesOde) {
  // Finite-difference derivative vs the right-hand side at several times.
  const AffineOde2 sys(Mat2{-3.0, 1.0, 2.0, -4.0}, Vec2{0.5, 0.2});
  const Vec2 x0{1.0, -2.0};
  for (double t : {0.1, 0.5, 1.3}) {
    const double h = 1e-7;
    const Vec2 fd =
        (sys.state_at(t + h, x0) - sys.state_at(t - h, x0)) / (2.0 * h);
    const Vec2 rhs = sys.derivative(sys.state_at(t, x0));
    EXPECT_NEAR(fd.x, rhs.x, 1e-5 * std::max(1.0, std::fabs(rhs.x)));
    EXPECT_NEAR(fd.y, rhs.y, 1e-5 * std::max(1.0, std::fabs(rhs.y)));
  }
}

TEST(AffineOde2, ConvergesToEquilibrium) {
  const AffineOde2 sys(Mat2{-2.0, 1.0, 1.0, -3.0}, Vec2{1.0, 2.0});
  ASSERT_TRUE(sys.has_equilibrium());
  const Vec2 eq = sys.equilibrium();
  const Vec2 x = sys.state_at(50.0, Vec2{10.0, -10.0});
  EXPECT_NEAR(x.x, eq.x, 1e-9);
  EXPECT_NEAR(x.y, eq.y, 1e-9);
  // The equilibrium is a fixed point of the dynamics.
  const Vec2 d = sys.derivative(eq);
  EXPECT_NEAR(d.x, 0.0, 1e-12);
  EXPECT_NEAR(d.y, 0.0, 1e-12);
}

TEST(AffineOde2, SingularSystemHasNoEquilibrium) {
  // Mode (1,1) shape: V_N frozen.
  const AffineOde2 sys(Mat2{0.0, 0.0, 0.0, -5.0}, Vec2{0.0, 0.0});
  EXPECT_FALSE(sys.has_equilibrium());
  EXPECT_THROW(sys.equilibrium(), AssertionError);
  // V_N (x component) must stay frozen while V_O decays.
  const Vec2 x = sys.state_at(1.0, Vec2{0.77, 1.0});
  EXPECT_NEAR(x.x, 0.77, 1e-12);
  EXPECT_NEAR(x.y, std::exp(-5.0), 1e-12);
}

TEST(AffineOde2, FlowComposition) {
  // state_at(t1+t2) == state_at(t2) applied to state_at(t1).
  const AffineOde2 sys(Mat2{-1.0, 0.3, 0.2, -2.0}, Vec2{0.4, 0.1});
  const Vec2 x0{2.0, -1.0};
  const Vec2 direct = sys.state_at(0.9, x0);
  const Vec2 composed = sys.state_at(0.5, sys.state_at(0.4, x0));
  EXPECT_NEAR(direct.x, composed.x, 1e-12);
  EXPECT_NEAR(direct.y, composed.y, 1e-12);
}

TEST(AffineOde2, SlowestRate) {
  const AffineOde2 sys(Mat2{-1.0, 0.0, 0.0, -4.0}, Vec2{});
  EXPECT_NEAR(sys.slowest_rate(), -1.0, 1e-12);
}

}  // namespace
}  // namespace charlie::ode
