#include "ode/piecewise.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/error.hpp"

namespace charlie::ode {
namespace {

AffineOde2 decay_toward(double target_x, double target_y, double rate) {
  return AffineOde2(Mat2{-rate, 0.0, 0.0, -rate},
                    Vec2{rate * target_x, rate * target_y});
}

TEST(Piecewise, SingleSegmentMatchesOde) {
  const AffineOde2 sys = decay_toward(1.0, 0.0, 2.0);
  PiecewiseTrajectory traj(0.0, Vec2{0.0, 1.0}, sys);
  const Vec2 direct = sys.state_at(0.7, Vec2{0.0, 1.0});
  const Vec2 via = traj.state_at(0.7);
  EXPECT_NEAR(via.x, direct.x, 1e-14);
  EXPECT_NEAR(via.y, direct.y, 1e-14);
}

TEST(Piecewise, ContinuityAcrossSwitch) {
  PiecewiseTrajectory traj(0.0, Vec2{0.0, 0.0}, decay_toward(1.0, 1.0, 3.0));
  traj.switch_mode(0.5, decay_toward(0.0, 0.0, 1.0));
  const double eps = 1e-9;
  const Vec2 before = traj.state_at(0.5 - eps);
  const Vec2 after = traj.state_at(0.5 + eps);
  EXPECT_NEAR(before.x, after.x, 1e-7);
  EXPECT_NEAR(before.y, after.y, 1e-7);
}

TEST(Piecewise, SegmentLookupAcrossManySwitches) {
  PiecewiseTrajectory traj(0.0, Vec2{1.0, 1.0}, decay_toward(0.0, 0.0, 1.0));
  for (int i = 1; i <= 10; ++i) {
    traj.switch_mode(0.1 * i, decay_toward(i % 2 ? 1.0 : 0.0, 0.5, 2.0));
  }
  EXPECT_EQ(traj.n_segments(), 11u);
  EXPECT_DOUBLE_EQ(traj.t_begin(), 0.0);
  EXPECT_DOUBLE_EQ(traj.t_last_switch(), 1.0);
  // state_at exactly on a boundary belongs to the later segment but is
  // continuous anyway.
  const Vec2 on = traj.state_at(0.5);
  const Vec2 just_before = traj.state_at(0.5 - 1e-10);
  EXPECT_NEAR(on.x, just_before.x, 1e-8);
}

TEST(Piecewise, ExtrapolatesAfterLastSwitch) {
  PiecewiseTrajectory traj(0.0, Vec2{1.0, 0.0}, decay_toward(0.0, 0.0, 1.0));
  const Vec2 x = traj.state_at(100.0);
  EXPECT_NEAR(x.x, 0.0, 1e-12);
}

TEST(Piecewise, OutOfOrderSwitchThrows) {
  PiecewiseTrajectory traj(0.0, Vec2{}, decay_toward(0.0, 0.0, 1.0));
  traj.switch_mode(1.0, decay_toward(1.0, 0.0, 1.0));
  EXPECT_THROW(traj.switch_mode(0.5, decay_toward(0.0, 0.0, 1.0)),
               AssertionError);
}

TEST(Piecewise, QueryBeforeStartThrows) {
  PiecewiseTrajectory traj(1.0, Vec2{}, decay_toward(0.0, 0.0, 1.0));
  EXPECT_THROW(traj.state_at(0.5), AssertionError);
}

TEST(Piecewise, DerivativeMatchesFiniteDifference) {
  PiecewiseTrajectory traj(0.0, Vec2{0.2, 0.9}, decay_toward(1.0, 0.0, 2.0));
  traj.switch_mode(0.4, decay_toward(0.0, 1.0, 3.0));
  for (double t : {0.2, 0.6}) {
    const double h = 1e-7;
    const Vec2 fd = (traj.state_at(t + h) - traj.state_at(t - h)) / (2 * h);
    const Vec2 d = traj.derivative_at(t);
    EXPECT_NEAR(fd.x, d.x, 1e-5);
    EXPECT_NEAR(fd.y, d.y, 1e-5);
  }
}

}  // namespace
}  // namespace charlie::ode
