#include <gtest/gtest.h>

#include "ode/mat2.hpp"
#include "ode/vec2.hpp"
#include "util/error.hpp"

namespace charlie::ode {
namespace {

TEST(Vec2, Arithmetic) {
  const Vec2 a{1.0, 2.0};
  const Vec2 b{3.0, -1.0};
  EXPECT_DOUBLE_EQ((a + b).x, 4.0);
  EXPECT_DOUBLE_EQ((a - b).y, 3.0);
  EXPECT_DOUBLE_EQ((2.0 * a).y, 4.0);
  EXPECT_DOUBLE_EQ((a / 2.0).x, 0.5);
  EXPECT_DOUBLE_EQ((-a).x, -1.0);
  EXPECT_DOUBLE_EQ(a.dot(b), 1.0);
}

TEST(Vec2, Norms) {
  const Vec2 v{3.0, 4.0};
  EXPECT_DOUBLE_EQ(v.norm(), 5.0);
  EXPECT_DOUBLE_EQ(v.norm_inf(), 4.0);
}

TEST(Vec2, CompoundAssignment) {
  Vec2 v{1.0, 1.0};
  v += {1.0, 2.0};
  v -= {0.5, 0.5};
  v *= 2.0;
  EXPECT_DOUBLE_EQ(v.x, 3.0);
  EXPECT_DOUBLE_EQ(v.y, 5.0);
}

TEST(Mat2, MatVecAndMatMat) {
  const Mat2 m{1.0, 2.0, 3.0, 4.0};
  const Vec2 v{1.0, 1.0};
  const Vec2 mv = m * v;
  EXPECT_DOUBLE_EQ(mv.x, 3.0);
  EXPECT_DOUBLE_EQ(mv.y, 7.0);
  const Mat2 mm = m * Mat2::identity();
  EXPECT_DOUBLE_EQ(mm.a, 1.0);
  EXPECT_DOUBLE_EQ(mm.d, 4.0);
}

TEST(Mat2, TraceDetInverse) {
  const Mat2 m{2.0, 1.0, 1.0, 3.0};
  EXPECT_DOUBLE_EQ(m.trace(), 5.0);
  EXPECT_DOUBLE_EQ(m.det(), 5.0);
  const Mat2 inv = m.inverse();
  const Mat2 prod = m * inv;
  EXPECT_NEAR(prod.a, 1.0, 1e-14);
  EXPECT_NEAR(prod.b, 0.0, 1e-14);
  EXPECT_NEAR(prod.c, 0.0, 1e-14);
  EXPECT_NEAR(prod.d, 1.0, 1e-14);
}

TEST(Mat2, SingularDetection) {
  const Mat2 singular{1.0, 2.0, 2.0, 4.0};
  EXPECT_TRUE(singular.is_singular());
  EXPECT_THROW(singular.inverse(), AssertionError);
  // Scale invariance of the singularity test.
  const Mat2 scaled = 1e-15 * singular;
  EXPECT_TRUE(scaled.is_singular());
  const Mat2 regular{1.0, 0.0, 0.0, 1e-8};
  EXPECT_FALSE(regular.is_singular());
}

TEST(Mat2, NormInf) {
  const Mat2 m{1.0, -2.0, 3.0, 0.5};
  EXPECT_DOUBLE_EQ(m.norm_inf(), 3.5);
}

TEST(Mat2, ZeroMatrixIsSingular) {
  EXPECT_TRUE(Mat2::zero().is_singular());
}

}  // namespace
}  // namespace charlie::ode
