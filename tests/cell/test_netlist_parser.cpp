// Syntax coverage of the structural netlist text format (cell/netlist.hpp):
// the happy path (comments, case folding, repeatable input declarations)
// and every parser-level error.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "cell/netlist.hpp"
#include "util/error.hpp"
#include "util/fault_injection.hpp"

namespace charlie {
namespace {

TEST(NetlistParser, ParsesInputsAndInstances) {
  const auto desc = cell::parse_netlist(
      "# a comment line\n"
      "input(a, b)\n"
      "input(c)\n"
      "\n"
      "nand2(n1, a, b)   // cell names fold to upper case\n"
      "NOR3(out, n1, b, c);\n");
  ASSERT_EQ(desc.inputs.size(), 3u);
  EXPECT_EQ(desc.inputs[0], "a");
  EXPECT_EQ(desc.inputs[1], "b");
  EXPECT_EQ(desc.inputs[2], "c");
  ASSERT_EQ(desc.n_gates(), 2u);
  EXPECT_EQ(desc.instances[0].cell, "NAND2");
  EXPECT_EQ(desc.instances[0].output, "n1");
  EXPECT_EQ(desc.instances[0].inputs,
            (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(desc.instances[0].line, 5);
  EXPECT_EQ(desc.instances[1].cell, "NOR3");
  EXPECT_EQ(desc.instances[1].inputs,
            (std::vector<std::string>{"n1", "b", "c"}));
}

TEST(NetlistParser, WhitespaceAndCaseAreFlexible) {
  const auto desc = cell::parse_netlist("  INPUT ( x )\n  inv( y ,x )  \n");
  ASSERT_EQ(desc.inputs.size(), 1u);
  ASSERT_EQ(desc.n_gates(), 1u);
  EXPECT_EQ(desc.instances[0].cell, "INV");
  EXPECT_EQ(desc.instances[0].output, "y");
  EXPECT_EQ(desc.instances[0].inputs, (std::vector<std::string>{"x"}));
}

TEST(NetlistParser, NetNamesAreCaseSensitive) {
  const auto desc = cell::parse_netlist("input(A, a)\nNOR2(out, A, a)\n");
  EXPECT_EQ(desc.inputs[0], "A");
  EXPECT_EQ(desc.inputs[1], "a");
}

TEST(NetlistParser, SyntaxErrorsCarryLineNumbers) {
  // Statement without parentheses.
  EXPECT_THROW(cell::parse_netlist("input(a)\nnonsense\n"), ConfigError);
  try {
    cell::parse_netlist("input(a)\nnonsense\n");
    FAIL() << "expected ConfigError";
  } catch (const ConfigError& e) {
    EXPECT_NE(std::string(e.what()).find(":2:"), std::string::npos)
        << e.what();
  }
  // Missing close paren.
  EXPECT_THROW(cell::parse_netlist("NOR2(out, a, b\n"), ConfigError);
  // Trailing garbage after the argument list.
  EXPECT_THROW(cell::parse_netlist("NOR2(out, a, b) extra\n"), ConfigError);
  // Bad net identifier.
  EXPECT_THROW(cell::parse_netlist("NOR2(out, 2x, b)\n"), ConfigError);
  // Empty argument.
  EXPECT_THROW(cell::parse_netlist("NOR2(out, , b)\n"), ConfigError);
  EXPECT_THROW(cell::parse_netlist("NOR2(out, a,)\n"), ConfigError);
  // Instance with no output net.
  EXPECT_THROW(cell::parse_netlist("NOR2()\n"), ConfigError);
  // input() with no nets.
  EXPECT_THROW(cell::parse_netlist("input()\n"), ConfigError);
  // Primary input declared twice.
  EXPECT_THROW(cell::parse_netlist("input(a)\ninput(a)\n"), ConfigError);
}

// Expect a ConfigError whose message carries both the 1-based line number
// and a diagnostic fragment.
void expect_error_at(const std::string& text, int line,
                     const std::string& fragment) {
  try {
    cell::parse_netlist(text);
    FAIL() << "expected ConfigError for: " << text;
  } catch (const ConfigError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find(":" + std::to_string(line) + ":"), std::string::npos)
        << what;
    EXPECT_NE(what.find(fragment), std::string::npos) << what;
  }
}

TEST(NetlistParser, DuplicateInputDeclarationsAreLineNumberedErrors) {
  // Across statements: the error names the re-declared net and the line of
  // the second declaration.
  expect_error_at("input(a)\ninput(b)\ninput(a)\n", 3, "\"a\" declared twice");
  // Within one statement.
  expect_error_at("input(a, b, a)\n", 1, "\"a\" declared twice");
}

TEST(NetlistParser, ParsesOutputDeclarations) {
  const auto desc = cell::parse_netlist(
      "input(a, b)\n"
      "output(y)\n"
      "NAND2(y, a, b)\n"
      "output(z)\n"
      "INV(z, y)\n");
  EXPECT_EQ(desc.outputs, (std::vector<std::string>{"y", "z"}));
  expect_error_at("output(y)\noutput(y)\n", 2, "\"y\" declared twice");
  expect_error_at("output()\n", 1, "at least one net");
}

TEST(NetlistParser, ParsesWireStatements) {
  const auto desc = cell::parse_netlist(
      "input(a)\n"
      "WIRE(aw, a, r=12e3, c=2.5e-15)\n"
      "wire(aw2, aw, r=1e3, c=1e-16, sections=4, rdrive=5e3, cload=2e-16, "
      "tdrive=25e-12, vdd=0.9)\n");
  ASSERT_EQ(desc.n_wires(), 2u);
  EXPECT_EQ(desc.wires[0].output, "aw");
  EXPECT_EQ(desc.wires[0].input, "a");
  EXPECT_EQ(desc.wires[0].r_total, 12e3);
  EXPECT_EQ(desc.wires[0].c_total, 2.5e-15);
  EXPECT_EQ(desc.wires[0].sections, 8);  // default
  EXPECT_EQ(desc.wires[0].r_drive, 0.0);
  EXPECT_EQ(desc.wires[0].line, 2);
  EXPECT_EQ(desc.wires[1].sections, 4);
  EXPECT_EQ(desc.wires[1].r_drive, 5e3);
  EXPECT_EQ(desc.wires[1].c_load, 2e-16);
  EXPECT_EQ(desc.wires[1].t_drive, 25e-12);
  EXPECT_EQ(desc.wires[1].vdd, 0.9);
}

TEST(NetlistParser, MalformedWireArgumentListsAreDiagnosed) {
  // Missing required parameters.
  expect_error_at("input(a)\nWIRE(w, a)\n", 2, "requires both r= and c=");
  expect_error_at("input(a)\nWIRE(w, a, r=1e3)\n", 2,
                  "requires both r= and c=");
  // Fewer than two nets.
  expect_error_at("WIRE(w)\n", 1, "needs two nets");
  expect_error_at("WIRE(r=1e3, w)\n", 1, "expected a net name");
  // A third positional net where parameters belong.
  expect_error_at("input(a, b)\nWIRE(w, a, b)\n", 2,
                  "key=value parameters");
  // Unknown key, duplicate key, malformed value, empty value.
  expect_error_at("input(a)\nWIRE(w, a, r=1e3, c=1e-15, bogus=1)\n", 2,
                  "unknown WIRE parameter \"bogus\"");
  expect_error_at("input(a)\nWIRE(w, a, r=1e3, r=2e3, c=1e-15)\n", 2,
                  "given twice");
  expect_error_at("input(a)\nWIRE(w, a, r=5x3, c=1e-15)\n", 2, "r");
  expect_error_at("input(a)\nWIRE(w, a, r=, c=1e-15)\n", 2,
                  "needs a value");
  // sections must parse as an integer.
  expect_error_at("input(a)\nWIRE(w, a, r=1e3, c=1e-15, sections=x)\n", 2,
                  "sections");
}

TEST(NetlistParser, AssignmentsOutsideWireStatementsAreDiagnosed) {
  // key=value arguments are a WIRE-only construct; cells and declarations
  // must reject them with the offending assignment spelled out.
  expect_error_at("input(a, b)\nNAND2(y, a, b, r=1e3)\n", 2,
                  "parameter assignment \"r=1e3\"");
  expect_error_at("input(a=1)\n", 1, "parameter assignment");
  expect_error_at("output(y=2)\n", 1, "parameter assignment");
}

TEST(NetlistParser, SemicolonOnlyAsTrailer) {
  EXPECT_NO_THROW(cell::parse_netlist("input(a); \nINV(y, a) ;\n"));
  EXPECT_THROW(cell::parse_netlist("INV(y, a); INV(z, y)\n"), ConfigError);
}

TEST(NetlistParser, ReadsFilesAndPrefixesErrorsWithThePath) {
  EXPECT_THROW(cell::read_netlist_file("/nonexistent/file.net"),
               ConfigError);

  const std::string path =
      ::testing::TempDir() + "netlist_parser_roundtrip.net";
  {
    std::ofstream out(path);
    out << "input(a, b)\nNAND2(y, a, b)\n";
  }
  const auto desc = cell::read_netlist_file(path);
  EXPECT_EQ(desc.n_gates(), 1u);

  {
    std::ofstream out(path);
    out << "input(a)\nbroken line\n";
  }
  try {
    cell::read_netlist_file(path);
    FAIL() << "expected ConfigError";
  } catch (const ConfigError& e) {
    EXPECT_NE(std::string(e.what()).find(path), std::string::npos);
  }
  std::remove(path.c_str());
}

TEST(NetlistParser, FileErrorsCarryAContiguousPathLinePrefix) {
  // Regression: the path and line number must form one clickable
  // `path:line:` token at the start of the message, not a path somewhere
  // and a line number somewhere else.
  const std::string path = ::testing::TempDir() + "netlist_parser_prefix.net";
  {
    std::ofstream out(path);
    out << "input(a)\nNOR2(out, a,)\n";
  }
  try {
    cell::read_netlist_file(path);
    FAIL() << "expected ConfigError";
  } catch (const ConfigError& e) {
    const std::string what = e.what();
    EXPECT_EQ(what.find(path + ":2:"), 0u) << what;
  }
  std::remove(path.c_str());

  // In-memory parses default to a "netlist" source name with the same
  // contiguous shape.
  try {
    cell::parse_netlist("input(a)\nNOR2(out, a,)\n");
    FAIL() << "expected ConfigError";
  } catch (const ConfigError& e) {
    EXPECT_EQ(std::string(e.what()).find("netlist:2:"), 0u) << e.what();
  }
}

TEST(NetlistParser, TruncatedFileReadIsADiagnosedSyntaxError) {
  // A read that comes back cut off (simulated via the injection site in
  // util::read_text_file) must surface as an ordinary path:line syntax
  // error, never as a crash or a silently half-parsed netlist.
  util::FaultInjector::Scope scope;
  util::FaultInjector::reset_local_hits();

  const std::string path = ::testing::TempDir() + "netlist_parser_trunc.net";
  {
    std::ofstream out(path);
    out << "input(a)\nNOR2(out, a, a)\n";
  }
  EXPECT_EQ(cell::read_netlist_file(path).n_gates(), 1u);

  util::FaultInjector::arm(
      "io.read_text_file",
      {util::FaultInjector::Action::kTruncateText, 0, -1});
  try {
    cell::read_netlist_file(path);
    FAIL() << "expected ConfigError from the truncated statement";
  } catch (const ConfigError& e) {
    EXPECT_EQ(std::string(e.what()).find(path + ":"), 0u) << e.what();
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace charlie
