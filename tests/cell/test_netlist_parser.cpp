// Syntax coverage of the structural netlist text format (cell/netlist.hpp):
// the happy path (comments, case folding, repeatable input declarations)
// and every parser-level error.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "cell/netlist.hpp"
#include "util/error.hpp"

namespace charlie {
namespace {

TEST(NetlistParser, ParsesInputsAndInstances) {
  const auto desc = cell::parse_netlist(
      "# a comment line\n"
      "input(a, b)\n"
      "input(c)\n"
      "\n"
      "nand2(n1, a, b)   // cell names fold to upper case\n"
      "NOR3(out, n1, b, c);\n");
  ASSERT_EQ(desc.inputs.size(), 3u);
  EXPECT_EQ(desc.inputs[0], "a");
  EXPECT_EQ(desc.inputs[1], "b");
  EXPECT_EQ(desc.inputs[2], "c");
  ASSERT_EQ(desc.n_gates(), 2u);
  EXPECT_EQ(desc.instances[0].cell, "NAND2");
  EXPECT_EQ(desc.instances[0].output, "n1");
  EXPECT_EQ(desc.instances[0].inputs,
            (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(desc.instances[0].line, 5);
  EXPECT_EQ(desc.instances[1].cell, "NOR3");
  EXPECT_EQ(desc.instances[1].inputs,
            (std::vector<std::string>{"n1", "b", "c"}));
}

TEST(NetlistParser, WhitespaceAndCaseAreFlexible) {
  const auto desc = cell::parse_netlist("  INPUT ( x )\n  inv( y ,x )  \n");
  ASSERT_EQ(desc.inputs.size(), 1u);
  ASSERT_EQ(desc.n_gates(), 1u);
  EXPECT_EQ(desc.instances[0].cell, "INV");
  EXPECT_EQ(desc.instances[0].output, "y");
  EXPECT_EQ(desc.instances[0].inputs, (std::vector<std::string>{"x"}));
}

TEST(NetlistParser, NetNamesAreCaseSensitive) {
  const auto desc = cell::parse_netlist("input(A, a)\nNOR2(out, A, a)\n");
  EXPECT_EQ(desc.inputs[0], "A");
  EXPECT_EQ(desc.inputs[1], "a");
}

TEST(NetlistParser, SyntaxErrorsCarryLineNumbers) {
  // Statement without parentheses.
  EXPECT_THROW(cell::parse_netlist("input(a)\nnonsense\n"), ConfigError);
  try {
    cell::parse_netlist("input(a)\nnonsense\n");
    FAIL() << "expected ConfigError";
  } catch (const ConfigError& e) {
    EXPECT_NE(std::string(e.what()).find(":2:"), std::string::npos)
        << e.what();
  }
  // Missing close paren.
  EXPECT_THROW(cell::parse_netlist("NOR2(out, a, b\n"), ConfigError);
  // Trailing garbage after the argument list.
  EXPECT_THROW(cell::parse_netlist("NOR2(out, a, b) extra\n"), ConfigError);
  // Bad net identifier.
  EXPECT_THROW(cell::parse_netlist("NOR2(out, 2x, b)\n"), ConfigError);
  // Empty argument.
  EXPECT_THROW(cell::parse_netlist("NOR2(out, , b)\n"), ConfigError);
  EXPECT_THROW(cell::parse_netlist("NOR2(out, a,)\n"), ConfigError);
  // Instance with no output net.
  EXPECT_THROW(cell::parse_netlist("NOR2()\n"), ConfigError);
  // input() with no nets.
  EXPECT_THROW(cell::parse_netlist("input()\n"), ConfigError);
  // Primary input declared twice.
  EXPECT_THROW(cell::parse_netlist("input(a)\ninput(a)\n"), ConfigError);
}

TEST(NetlistParser, SemicolonOnlyAsTrailer) {
  EXPECT_NO_THROW(cell::parse_netlist("input(a); \nINV(y, a) ;\n"));
  EXPECT_THROW(cell::parse_netlist("INV(y, a); INV(z, y)\n"), ConfigError);
}

TEST(NetlistParser, ReadsFilesAndPrefixesErrorsWithThePath) {
  EXPECT_THROW(cell::read_netlist_file("/nonexistent/file.net"),
               ConfigError);

  const std::string path =
      ::testing::TempDir() + "netlist_parser_roundtrip.net";
  {
    std::ofstream out(path);
    out << "input(a, b)\nNAND2(y, a, b)\n";
  }
  const auto desc = cell::read_netlist_file(path);
  EXPECT_EQ(desc.n_gates(), 1u);

  {
    std::ofstream out(path);
    out << "input(a)\nbroken line\n";
  }
  try {
    cell::read_netlist_file(path);
    FAIL() << "expected ConfigError";
  } catch (const ConfigError& e) {
    EXPECT_NE(std::string(e.what()).find(path), std::string::npos);
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace charlie
