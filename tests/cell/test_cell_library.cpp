// CellLibrary registry behaviour that needs no analog substrate: the
// reference preset, spec lookups, channel factories, SIS-delay overrides,
// and the CSV save/load round trip (bit-exact parameters). The
// characterize-once pipeline against the real substrate is covered in
// tests/integration/test_netlist_circuit.cpp.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "cell/cell_library.hpp"
#include "core/nor_params.hpp"
#include "util/csv.hpp"
#include "util/error.hpp"
#include "util/fault_injection.hpp"

namespace charlie {
namespace {

TEST(CellLibrary, ReferenceRegistryIsComplete) {
  const auto lib = cell::CellLibrary::reference();
  EXPECT_TRUE(lib.tech_fingerprint().empty());
  ASSERT_EQ(lib.specs().size(), cell::CellLibrary::cell_names().size());
  for (const auto& name : cell::CellLibrary::cell_names()) {
    const auto& spec = lib.spec(name);
    EXPECT_EQ(spec.name, name);
    EXPECT_GE(spec.arity, 1);
  }
  EXPECT_EQ(lib.spec("INV").arity, 1);
  EXPECT_EQ(lib.spec("NOR2").arity, 2);
  EXPECT_EQ(lib.spec("NOR3").arity, 3);
  EXPECT_EQ(lib.spec("NAND3").arity, 3);
  EXPECT_TRUE(lib.spec("NOR2").hybrid);
  EXPECT_TRUE(lib.spec("NAND3").hybrid);
  EXPECT_FALSE(lib.spec("INV").hybrid);
  EXPECT_FALSE(lib.spec("XOR2").hybrid);
}

TEST(CellLibrary, ReferenceNor2IsThePaperTable1Model) {
  const auto lib = cell::CellLibrary::reference();
  const auto& p = lib.spec("NOR2").params;
  const auto nor = core::NorParams::paper_table1();
  ASSERT_EQ(p.n_inputs(), 2);
  EXPECT_EQ(p.r_series[0], nor.r1);
  EXPECT_EQ(p.r_series[1], nor.r2);
  EXPECT_EQ(p.r_parallel[0], nor.r3);
  EXPECT_EQ(p.r_parallel[1], nor.r4);
  EXPECT_EQ(p.c_int, nor.cn);
  EXPECT_EQ(p.c_out, nor.co);
  EXPECT_EQ(p.delta_min, nor.delta_min);
}

TEST(CellLibrary, LookupIsCaseInsensitiveAndChecked) {
  const auto lib = cell::CellLibrary::reference();
  EXPECT_EQ(lib.spec("nor2").name, "NOR2");
  EXPECT_EQ(lib.spec("Nand3").name, "NAND3");
  EXPECT_NE(lib.find("xor2"), nullptr);
  EXPECT_EQ(lib.find("NOPE4"), nullptr);
  EXPECT_THROW(lib.spec("NOPE4"), ConfigError);
}

TEST(CellLibrary, ChannelFactoriesMatchTheFamily) {
  const auto lib = cell::CellLibrary::reference();
  EXPECT_NE(lib.spec("NOR3").make_mis_channel(), nullptr);
  EXPECT_EQ(lib.spec("NOR3").make_mis_channel()->n_inputs(), 3);
  EXPECT_NE(lib.spec("AND2").make_sis_channel(), nullptr);
  EXPECT_THROW(lib.spec("AND2").make_mis_channel(), AssertionError);
  EXPECT_THROW(lib.spec("NOR3").make_sis_channel(), AssertionError);
}

TEST(CellLibrary, HybridInstancesShareOneModeTable) {
  const auto lib = cell::CellLibrary::reference();
  const auto& spec = lib.spec("NAND2");
  EXPECT_NE(spec.tables, nullptr);
  // Many channels, one table: the characterize-once/instantiate-many
  // contract at the spec level.
  EXPECT_EQ(spec.tables.use_count(), 1);
  auto c1 = spec.make_mis_channel();
  auto c2 = spec.make_mis_channel();
  EXPECT_EQ(spec.tables.use_count(), 3);
}

TEST(CellLibrary, SisDelayOverrides) {
  auto lib = cell::CellLibrary::reference();
  lib.set_sis_delays("inv", 7e-12, 9e-12);
  EXPECT_EQ(lib.spec("INV").rise_delay, 7e-12);
  EXPECT_EQ(lib.spec("INV").fall_delay, 9e-12);
  EXPECT_THROW(lib.set_sis_delays("NOR2", 1e-12, 1e-12), ConfigError);
  EXPECT_THROW(lib.set_sis_delays("NOPE", 1e-12, 1e-12), ConfigError);
}

TEST(CellLibrary, DerivedSisDelaysAreConsistentCompositions) {
  const auto lib = cell::CellLibrary::reference();
  const auto& inv = lib.spec("INV");
  const auto& buf = lib.spec("BUF");
  // BUF = two inverter stages, one falling + one rising, both directions.
  EXPECT_DOUBLE_EQ(buf.rise_delay, inv.rise_delay + inv.fall_delay);
  EXPECT_DOUBLE_EQ(buf.fall_delay, buf.rise_delay);
  // Composites are strictly slower than their first stage alone.
  EXPECT_GT(lib.spec("AND2").rise_delay, inv.rise_delay);
  EXPECT_GT(lib.spec("OR2").fall_delay, inv.fall_delay);
  EXPECT_GT(lib.spec("XOR2").rise_delay, lib.spec("AND2").rise_delay);
}

TEST(CellLibrary, CsvRoundTripIsBitExact) {
  const std::string path = ::testing::TempDir() + "cell_library_rt.csv";
  auto lib = cell::CellLibrary::reference();
  lib.set_sis_delays("XOR2", 111e-12, 222e-12);  // survives the round trip
  lib.save_csv(path);
  const auto loaded = cell::CellLibrary::load_csv(path);
  EXPECT_EQ(loaded.tech_fingerprint(), lib.tech_fingerprint());
  ASSERT_EQ(loaded.specs().size(), lib.specs().size());
  for (std::size_t i = 0; i < lib.specs().size(); ++i) {
    const auto& a = lib.specs()[i];
    const auto& b = loaded.specs()[i];
    EXPECT_EQ(a.name, b.name);
    EXPECT_EQ(a.hybrid, b.hybrid);
    if (a.hybrid) {
      EXPECT_EQ(a.params.topology, b.params.topology);
      EXPECT_EQ(a.params.r_series, b.params.r_series);
      EXPECT_EQ(a.params.r_parallel, b.params.r_parallel);
      EXPECT_EQ(a.params.c_int, b.params.c_int);
      EXPECT_EQ(a.params.c_out, b.params.c_out);
      EXPECT_EQ(a.params.vdd, b.params.vdd);
      EXPECT_EQ(a.params.delta_min, b.params.delta_min);
    } else {
      EXPECT_EQ(a.rise_delay, b.rise_delay) << a.name;
      EXPECT_EQ(a.fall_delay, b.fall_delay) << a.name;
    }
  }
  std::remove(path.c_str());
}

TEST(CellLibrary, LoadRejectsMalformedFiles) {
  EXPECT_THROW(cell::CellLibrary::load_csv("/nonexistent/lib.csv"),
               ConfigError);

  const std::string path = ::testing::TempDir() + "cell_library_bad.csv";
  auto write = [&](const std::string& text) {
    std::ofstream out(path);
    out << text;
  };
  write("wrong,header,line,here\n");
  EXPECT_THROW(cell::CellLibrary::load_csv(path), ConfigError);
  // Header only: every cell is missing.
  write("cell,field,index,value\n_tech,fingerprint,0,x\n");
  EXPECT_THROW(cell::CellLibrary::load_csv(path), ConfigError);
  // No fingerprint row.
  write("cell,field,index,value\nINV,rise,0,1e-11\nINV,fall,0,1e-11\n");
  EXPECT_THROW(cell::CellLibrary::load_csv(path), ConfigError);
  // Duplicate row.
  write("cell,field,index,value\n_tech,fingerprint,0,x\n"
        "INV,rise,0,1e-11\nINV,rise,0,2e-11\n");
  EXPECT_THROW(cell::CellLibrary::load_csv(path), ConfigError);
  // Non-numeric value where a number is required: corrupt one line of an
  // otherwise valid save.
  {
    cell::CellLibrary::reference().save_csv(path);
    std::string text = util::read_text_file(path);
    const auto at = text.find("\nINV,rise,0,");
    ASSERT_NE(at, std::string::npos);
    const auto eol = text.find('\n', at + 1);
    text.replace(at, eol - at, "\nINV,rise,0,oops");
    write(text);
    EXPECT_THROW(cell::CellLibrary::load_csv(path), ConfigError);
  }
  std::remove(path.c_str());
}

TEST(CellLibrary, TruncatedCacheReadIsADiagnosedError) {
  // A characterization cache whose read comes back cut off (simulated via
  // the injection site in util::read_text_file) must fail with a ConfigError
  // naming the file -- a half-loaded library (missing cells or fields) is
  // never silently returned.
  util::FaultInjector::Scope scope;
  util::FaultInjector::reset_local_hits();

  const std::string path = ::testing::TempDir() + "cell_library_trunc.csv";
  cell::CellLibrary::reference().save_csv(path);
  EXPECT_NO_THROW(cell::CellLibrary::load_csv(path));  // intact read is fine

  util::FaultInjector::arm(
      "io.read_text_file",
      {util::FaultInjector::Action::kTruncateText, 0, -1});
  try {
    cell::CellLibrary::load_csv(path);
    FAIL() << "expected ConfigError from the truncated cache";
  } catch (const ConfigError& e) {
    EXPECT_NE(std::string(e.what()).find(path), std::string::npos) << e.what();
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace charlie
