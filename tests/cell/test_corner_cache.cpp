// The multi-corner characterization pipeline: analytic corner derivation
// (CellLibrary::at_corner / characterize_at), the corner-aware CSV cache,
// schema/fingerprint versioning, and CornerCache's
// corruption-regenerates-silently guarantees. SPICE runs at nominal only --
// every test here pins that with n_characterization_runs.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

#include "cell/cell_library.hpp"
#include "cell/corner_cache.hpp"
#include "core/process_point.hpp"
#include "spice/technology.hpp"
#include "util/csv.hpp"
#include "util/error.hpp"

namespace charlie {
namespace {

const spice::Technology& tech() {
  static const spice::Technology t = spice::Technology::freepdk15_like();
  return t;
}

// Characterized once per test process (each ctest entry is its own process).
const cell::CellLibrary& nominal_library() {
  static const cell::CellLibrary lib = [] {
    cell::CellLibrary::reset_characterization_cache();
    return cell::CellLibrary::characterize(tech());
  }();
  return lib;
}

core::ProcessPoint slow_corner() {
  core::ProcessPoint p;
  p.vdd_scale = 0.95;
  p.vth_shift = 0.02;
  p.drive_scale = 0.9;
  return p;
}

core::ProcessPoint fast_corner() {
  core::ProcessPoint p;
  p.vdd_scale = 1.05;
  p.vth_shift = -0.02;
  p.drive_scale = 1.1;
  return p;
}

long total_runs() {
  long n = 0;
  for (const char* cell : {"NOR2", "NOR3", "NAND2", "NAND3", "INV"}) {
    n += cell::CellLibrary::n_characterization_runs(cell);
  }
  return n;
}

// TempDir() persists across test invocations; each CornerCacheDir test
// starts from an empty directory so its SPICE-run accounting is
// self-contained (a stale warm cache would skip the characterize that
// primes the in-process fit memo).
std::string fresh_cache_dir(const char* name) {
  const std::string dir = ::testing::TempDir() + name;
  std::filesystem::remove_all(dir);
  return dir;
}

void write_file(const std::string& path, const std::string& text) {
  std::ofstream out(path, std::ios::trunc | std::ios::binary);
  out << text;
}

std::string read_file(const std::string& path) {
  return util::read_text_file(path);
}

TEST(TechnologyFingerprint, CarriesFormatVersion) {
  const std::string fp = tech().fingerprint();
  const std::string prefix =
      "v" + std::to_string(spice::Technology::kFingerprintVersion) + ";";
  EXPECT_EQ(fp.rfind(prefix, 0), 0u) << fp;
}

TEST(AtCorner, DerivesAnalyticallyFromNominal) {
  const auto& nominal = nominal_library();
  const core::ProcessPoint p = slow_corner();
  const long runs_before = total_runs();
  const cell::CellLibrary corner = nominal.at_corner(p);
  EXPECT_EQ(total_runs(), runs_before);  // no SPICE for a corner

  EXPECT_EQ(corner.tech_fingerprint(), nominal.tech_fingerprint());
  EXPECT_EQ(corner.corner_fingerprint(), p.fingerprint());

  const double s = p.resistance_scale(nominal.spec("NOR2").params.vdd);
  ASSERT_GT(s, 1.0);  // the slow corner really is slow
  for (const char* name : {"NOR2", "NAND3"}) {
    const auto& n = nominal.spec(name).params;
    const auto& c = corner.spec(name).params;
    for (int i = 0; i < n.n_inputs(); ++i) {
      EXPECT_DOUBLE_EQ(c.r_series[i], n.r_series[i] * s);
    }
    EXPECT_EQ(c.c_int, n.c_int);
    EXPECT_DOUBLE_EQ(c.vdd, n.vdd * p.vdd_scale);
  }
  // SIS cells ride the same resistance factor.
  EXPECT_DOUBLE_EQ(corner.spec("INV").rise_delay,
                   nominal.spec("INV").rise_delay * s);
  EXPECT_DOUBLE_EQ(corner.spec("AND2").fall_delay,
                   nominal.spec("AND2").fall_delay * s);
}

TEST(AtCorner, NominalPointIsIdentityAndCornersDoNotCompose) {
  const auto& nominal = nominal_library();
  const cell::CellLibrary same = nominal.at_corner(core::ProcessPoint());
  // Identity: the shared mode tables are literally the same objects.
  EXPECT_EQ(same.spec("NOR2").tables.get(), nominal.spec("NOR2").tables.get());

  const cell::CellLibrary corner = nominal.at_corner(slow_corner());
  EXPECT_THROW(corner.at_corner(fast_corner()), ConfigError);
}

TEST(AtCorner, CornerTablesAreMemoizedPerCorner) {
  const auto& nominal = nominal_library();
  const cell::CellLibrary a = nominal.at_corner(slow_corner());
  const cell::CellLibrary b = nominal.at_corner(slow_corner());
  const cell::CellLibrary c = nominal.at_corner(fast_corner());
  // Same corner -> one shared table per cell; different corner -> distinct.
  EXPECT_EQ(a.spec("NAND2").tables.get(), b.spec("NAND2").tables.get());
  EXPECT_NE(a.spec("NAND2").tables.get(), c.spec("NAND2").tables.get());
}

TEST(CornerCsv, RoundTripsBitExactWithCornerIdentity) {
  const std::string path = ::testing::TempDir() + "corner_rt.csv";
  const cell::CellLibrary corner =
      cell::CellLibrary::characterize_at(tech(), fast_corner());
  corner.save_csv(path);
  const cell::CellLibrary loaded = cell::CellLibrary::load_csv(path);
  EXPECT_EQ(loaded.corner_fingerprint(), fast_corner().fingerprint());
  EXPECT_EQ(loaded.tech_fingerprint(), corner.tech_fingerprint());
  for (const char* name : {"NOR2", "NOR3", "NAND2", "NAND3"}) {
    EXPECT_EQ(loaded.spec(name).params.r_series,
              corner.spec(name).params.r_series);
    EXPECT_EQ(loaded.spec(name).params.vdd, corner.spec(name).params.vdd);
    EXPECT_EQ(loaded.spec(name).params.delta_min,
              corner.spec(name).params.delta_min);
  }
  EXPECT_EQ(loaded.spec("XOR2").rise_delay, corner.spec("XOR2").rise_delay);
  std::remove(path.c_str());
}

TEST(CornerCsv, StaleSchemaVersionRegeneratesSilently) {
  const std::string path = ::testing::TempDir() + "corner_stale_schema.csv";
  const core::ProcessPoint p = slow_corner();
  cell::CellLibrary::characterize_cached(path, tech(), p);  // warm file

  // Rewrite the schema row to an older version: the file must stop loading
  // and regenerate, without a SPICE re-run.
  std::string text = read_file(path);
  const std::string current =
      "_format,version,0," +
      std::to_string(cell::CellLibrary::kCsvFormatVersion);
  const auto at = text.find(current);
  ASSERT_NE(at, std::string::npos);
  text.replace(at, current.size(), "_format,version,0,1");
  write_file(path, text);
  EXPECT_THROW(cell::CellLibrary::load_csv(path), ConfigError);

  const long runs_before = total_runs();
  const cell::CellLibrary regenerated =
      cell::CellLibrary::characterize_cached(path, tech(), p);
  EXPECT_EQ(total_runs(), runs_before);
  EXPECT_EQ(regenerated.corner_fingerprint(), p.fingerprint());
  // The rewritten file is healthy again.
  EXPECT_EQ(cell::CellLibrary::load_csv(path).corner_fingerprint(),
            p.fingerprint());
  std::remove(path.c_str());
}

TEST(CornerCsv, PreVersioningFilesRegenerate) {
  // A v1-era file had no _format row at all; it must fail load and be
  // replaced, not silently match.
  const std::string path = ::testing::TempDir() + "corner_prever.csv";
  const core::ProcessPoint p = slow_corner();
  cell::CellLibrary::characterize_cached(path, tech(), p);
  std::string text = read_file(path);
  const auto at = text.find("_format");
  ASSERT_NE(at, std::string::npos);
  const auto eol = text.find('\n', at);
  text.erase(at, eol - at + 1);
  write_file(path, text);
  EXPECT_THROW(cell::CellLibrary::load_csv(path), ConfigError);
  const cell::CellLibrary regenerated =
      cell::CellLibrary::characterize_cached(path, tech(), p);
  EXPECT_EQ(regenerated.corner_fingerprint(), p.fingerprint());
  std::remove(path.c_str());
}

TEST(CornerCacheDir, ServesMemoThenDiskThenCharacterize) {
  const std::string dir = fresh_cache_dir("corner_cache_a");
  cell::CornerCache cache(dir, tech());
  const auto slow1 = cache.library_at(slow_corner());
  const auto slow2 = cache.library_at(slow_corner());
  EXPECT_EQ(slow1.get(), slow2.get());  // memo hit
  EXPECT_EQ(cache.n_memoized(), 1u);
  const auto fast = cache.library_at(fast_corner());
  EXPECT_EQ(cache.n_memoized(), 2u);
  EXPECT_NE(cache.corner_path(slow_corner()), cache.corner_path(fast_corner()));

  // A fresh cache over the same directory cold-starts from the CSVs: same
  // values, no SPICE.
  const long runs_before = total_runs();
  cell::CornerCache cold(dir, tech());
  const auto reloaded = cold.library_at(slow_corner());
  EXPECT_EQ(total_runs(), runs_before);
  EXPECT_EQ(reloaded->spec("NOR2").params.r_series,
            slow1->spec("NOR2").params.r_series);
}

TEST(CornerCacheDir, CorruptionRegeneratesOnlyTheAffectedCorner) {
  const std::string dir = fresh_cache_dir("corner_cache_b");
  const core::ProcessPoint slow = slow_corner();
  const core::ProcessPoint fast = fast_corner();
  {
    cell::CornerCache warm(dir, tech());
    warm.library_at(slow);
    warm.library_at(fast);
  }
  const std::string slow_path =
      cell::CornerCache(dir, tech()).corner_path(slow);
  const std::string fast_path =
      cell::CornerCache(dir, tech()).corner_path(fast);
  const std::string fast_text = read_file(fast_path);

  const struct {
    const char* label;
    std::string content;
  } corruptions[] = {
      {"truncated", read_file(slow_path).substr(0, 60)},
      {"garbage", std::string("\x7f\x03garbage\x00binary", 16)},
      {"corner-mismatch", fast_text},  // valid CSV, wrong corner
      {"empty", ""},
  };
  for (const auto& c : corruptions) {
    write_file(slow_path, c.content);
    const long runs_before = total_runs();
    cell::CornerCache cache(dir, tech());
    const auto lib = cache.library_at(slow);
    EXPECT_EQ(total_runs(), runs_before) << c.label;  // never re-runs SPICE
    EXPECT_EQ(lib->corner_fingerprint(), slow.fingerprint()) << c.label;
    // Regeneration healed the file and left the other corner untouched.
    EXPECT_EQ(cell::CellLibrary::load_csv(slow_path).corner_fingerprint(),
              slow.fingerprint())
        << c.label;
    EXPECT_EQ(read_file(fast_path), fast_text) << c.label;
  }
}

}  // namespace
}  // namespace charlie
