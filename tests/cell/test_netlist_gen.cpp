// Synthetic netlist generation and the text serializer: deterministic
// output, exact write/parse round-trip, and the generated topology must be
// valid under CircuitBuilder (acyclic, every net driven once) -- both
// monolithically and sharded, since generated netlists are the sharded
// benchmark workload (they include RC wires, which the shipped c432
// example does not).
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "cell/cell_library.hpp"
#include "cell/netlist_gen.hpp"
#include "sim/circuit_builder.hpp"
#include "sim/sharded_circuit.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "waveform/generator.hpp"

namespace charlie {
namespace {

cell::NetlistGenConfig small_config() {
  cell::NetlistGenConfig config;
  config.n_gates = 500;
  config.n_inputs = 12;
  config.n_outputs = 8;
  config.layer_width = 32;
  config.wire_fraction = 0.05;
  config.seed = 3;
  return config;
}

sim::CircuitBuilder builder() {
  static const auto library =
      std::make_shared<const cell::CellLibrary>(cell::CellLibrary::reference());
  return sim::CircuitBuilder(library);
}

TEST(NetlistGen, DeterministicAndSized) {
  const auto a = cell::generate_netlist(small_config());
  const auto b = cell::generate_netlist(small_config());
  EXPECT_EQ(a.n_gates(), 500u);
  EXPECT_EQ(a.inputs.size(), 12u);
  EXPECT_EQ(a.outputs.size(), 8u);
  EXPECT_GT(a.n_wires(), 0u);
  EXPECT_EQ(cell::write_netlist(a), cell::write_netlist(b));
  // A different seed reshapes the netlist.
  auto other = small_config();
  other.seed = 4;
  EXPECT_NE(cell::write_netlist(a),
            cell::write_netlist(cell::generate_netlist(other)));
}

TEST(NetlistGen, WriteParseRoundTrips) {
  const auto desc = cell::generate_netlist(small_config());
  const auto reparsed = cell::parse_netlist(cell::write_netlist(desc));
  EXPECT_EQ(reparsed.inputs, desc.inputs);
  EXPECT_EQ(reparsed.outputs, desc.outputs);
  ASSERT_EQ(reparsed.n_gates(), desc.n_gates());
  ASSERT_EQ(reparsed.n_wires(), desc.n_wires());
  for (std::size_t i = 0; i < desc.instances.size(); ++i) {
    EXPECT_EQ(reparsed.instances[i].cell, desc.instances[i].cell);
    EXPECT_EQ(reparsed.instances[i].output, desc.instances[i].output);
    EXPECT_EQ(reparsed.instances[i].inputs, desc.instances[i].inputs);
  }
  for (std::size_t i = 0; i < desc.wires.size(); ++i) {
    EXPECT_EQ(reparsed.wires[i].output, desc.wires[i].output);
    EXPECT_EQ(reparsed.wires[i].input, desc.wires[i].input);
    EXPECT_EQ(reparsed.wires[i].r_total, desc.wires[i].r_total);
    EXPECT_EQ(reparsed.wires[i].c_total, desc.wires[i].c_total);
    EXPECT_EQ(reparsed.wires[i].sections, desc.wires[i].sections);
    EXPECT_EQ(reparsed.wires[i].vdd, desc.wires[i].vdd);
  }
}

TEST(NetlistGen, GeneratedNetlistBuildsAndShardsBitIdentically) {
  const auto desc = cell::generate_netlist(small_config());
  const auto b = builder();
  auto mono = b.build(desc);  // validates: acyclic, driven exactly once
  auto sharded = b.build_sharded(desc, 4);
  EXPECT_EQ(sharded->n_gates(), mono->n_gates());

  waveform::TraceConfig trace;
  trace.mu = 150e-12;
  trace.sigma = 60e-12;
  trace.n_transitions = 20;
  util::Rng rng(5);
  const auto stimuli =
      waveform::generate_traces(trace, mono->n_inputs(), rng);
  double t_last = 0.0;
  for (const auto& t : stimuli) {
    if (!t.empty()) t_last = std::max(t_last, t.transitions().back());
  }
  const double t_end = t_last + 2e-9;

  const auto expected = mono->simulate(stimuli, 0.0, t_end);
  sim::ShardedSimConfig config;
  config.n_threads = 2;
  const auto actual = sharded->simulate(stimuli, 0.0, t_end, config);
  EXPECT_EQ(expected.n_events, actual.n_events);
  for (const auto& name : desc.outputs) {
    const auto& mono_trace = expected.trace(mono->find_net(name));
    const auto& sharded_trace = actual.trace(name);
    EXPECT_EQ(mono_trace.initial_value(), sharded_trace.initial_value())
        << name;
    EXPECT_EQ(mono_trace.transitions(), sharded_trace.transitions()) << name;
  }
}

TEST(NetlistGen, RejectsNonsenseConfig) {
  auto config = small_config();
  config.n_gates = 0;
  EXPECT_THROW(cell::generate_netlist(config), ConfigError);
  config = small_config();
  config.wire_fraction = 1.5;
  EXPECT_THROW(cell::generate_netlist(config), ConfigError);
}

}  // namespace
}  // namespace charlie
