// sim::CircuitBuilder semantics: netlist validation (unknown cell, arity
// mismatch, duplicate/undriven nets, cycles), topological instantiation
// order, and the deprecation-hygiene guarantee that the legacy
// Circuit::add_nor2_mis + HybridNorChannel path is bit-identical to the
// builder + CellLibrary path.
#include <gtest/gtest.h>

#include <memory>

#include "cell/cell_library.hpp"
#include "core/nor_params.hpp"
#include "sim/circuit.hpp"
#include "sim/circuit_builder.hpp"
#include "sim/hybrid_nor_channel.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "waveform/generator.hpp"

namespace charlie {
namespace {

sim::CircuitBuilder reference_builder() {
  return sim::CircuitBuilder(cell::CellLibrary::reference());
}

TEST(CircuitBuilder, BuildsAValidatedCircuit) {
  const auto circuit = reference_builder().build_text(
      "input(a, b, c)\n"
      "NOR2(x, a, b)\n"
      "NAND3(y, x, b, c)\n"
      "INV(z, y)\n");
  EXPECT_EQ(circuit->n_inputs(), 3u);
  EXPECT_EQ(circuit->n_gates(), 3u);
  EXPECT_EQ(circuit->n_nets(), 6u);
  EXPECT_NO_THROW(circuit->find_net("z"));
}

TEST(CircuitBuilder, InstancesMayAppearInAnyOrder) {
  // z depends on y which depends on x; the netlist lists them backwards.
  const auto circuit = reference_builder().build_text(
      "input(a, b)\n"
      "INV(z, y)\n"
      "NAND2(y, x, b)\n"
      "NOR2(x, a, b)\n");
  EXPECT_EQ(circuit->n_gates(), 3u);
  // The circuit simulates correctly despite the declaration order.
  const waveform::DigitalTrace step(false, {1e-9});
  const waveform::DigitalTrace quiet(false, {});
  const auto result = circuit->simulate({step, quiet}, 0.0, 3e-9);
  EXPECT_GE(result.n_events, 1);
}

TEST(CircuitBuilder, RejectsUnknownCell) {
  try {
    reference_builder().build_text("input(a)\nFROB(x, a)\n");
    FAIL() << "expected ConfigError";
  } catch (const ConfigError& e) {
    EXPECT_NE(std::string(e.what()).find("unknown cell"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(CircuitBuilder, RejectsArityMismatch) {
  try {
    reference_builder().build_text("input(a, b, c)\nNOR2(x, a, b, c)\n");
    FAIL() << "expected ConfigError";
  } catch (const ConfigError& e) {
    EXPECT_NE(std::string(e.what()).find("takes 2 inputs, got 3"),
              std::string::npos);
  }
  EXPECT_THROW(reference_builder().build_text("input(a)\nNAND3(x, a)\n"),
               ConfigError);
}

TEST(CircuitBuilder, RejectsDuplicateNets) {
  // Two gates driving the same net.
  EXPECT_THROW(reference_builder().build_text(
                   "input(a, b)\nINV(x, a)\nINV(x, b)\n"),
               ConfigError);
  // A gate driving a primary input.
  EXPECT_THROW(
      reference_builder().build_text("input(a, b)\nINV(b, a)\n"),
      ConfigError);
  // The same primary input twice (caught by the parser for single
  // declarations; the builder re-checks for hand-built descs).
  cell::NetlistDesc desc;
  desc.inputs = {"a", "a"};
  EXPECT_THROW(reference_builder().build(desc), ConfigError);
}

TEST(CircuitBuilder, RejectsUndrivenNets) {
  try {
    reference_builder().build_text("input(a)\nNOR2(x, a, ghost)\n");
    FAIL() << "expected ConfigError";
  } catch (const ConfigError& e) {
    EXPECT_NE(std::string(e.what()).find("ghost"), std::string::npos);
  }
}

TEST(CircuitBuilder, RejectsCombinationalCycles) {
  // x -> y -> x.
  try {
    reference_builder().build_text(
        "input(a)\n"
        "NOR2(x, a, y)\n"
        "NOR2(y, a, x)\n");
    FAIL() << "expected ConfigError";
  } catch (const ConfigError& e) {
    EXPECT_NE(std::string(e.what()).find("cycle"), std::string::npos);
  }
  // Self-loop.
  EXPECT_THROW(reference_builder().build_text("input(a)\nNAND2(x, a, x)\n"),
               ConfigError);
}

// --- deprecation hygiene: old API vs builder API bit-identity -------------

TEST(CircuitBuilder, LegacyAddNor2MisIsBitIdenticalToBuilderPath) {
  const auto params = core::NorParams::paper_table1();

  // Old API: hand-wired NOR2 chain with HybridNorChannel instances.
  sim::Circuit old_circuit;
  {
    const auto a = old_circuit.add_input("a");
    const auto b = old_circuit.add_input("b");
    const auto x = old_circuit.add_nor2_mis(
        "x", a, b, std::make_unique<sim::HybridNorChannel>(params));
    old_circuit.add_nor2_mis(
        "y", x, b, std::make_unique<sim::HybridNorChannel>(params));
  }

  // Builder API: the same topology from a netlist against the reference
  // library, whose NOR2 is GateParams::nor2_reference() ==
  // from_nor(paper_table1).
  const auto new_circuit = reference_builder().build_text(
      "input(a, b)\nNOR2(x, a, b)\nNOR2(y, x, b)\n");

  util::Rng rng(2024);
  waveform::TraceConfig config;
  config.mu = 140e-12;
  config.sigma = 70e-12;
  config.n_transitions = 200;
  const auto stimuli = waveform::generate_traces(config, 2, rng);
  const double t_end = 200 * 300e-12;

  const auto old_result = old_circuit.simulate(stimuli, 0.0, t_end);
  const auto new_result = new_circuit->simulate(stimuli, 0.0, t_end);

  ASSERT_EQ(old_result.n_events, new_result.n_events);
  for (const char* net : {"x", "y"}) {
    const auto& old_trace = old_result.trace(old_circuit.find_net(net));
    const auto& new_trace = new_result.trace(new_circuit->find_net(net));
    EXPECT_EQ(old_trace.initial_value(), new_trace.initial_value()) << net;
    // Bit-identical: the exact same crossing times, not just close ones.
    EXPECT_EQ(old_trace.transitions(), new_trace.transitions()) << net;
  }
}

}  // namespace
}  // namespace charlie
