// Off-nominal validation of the process-point pipeline against RK45: the
// mode ODEs derived at a process corner stay consistent with their closed
// forms away from nominal, and grid-interpolated tables reproduce the exact
// threshold-crossing times at the level the simulator actually consumes
// them (the two-exponential crossing solver). The crossing-level bound
// asserted here is the one quoted by tests/core/test_mode_table_grid.cpp
// and docs/statistical_timing.md.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "core/gate_mode_tables.hpp"
#include "core/gate_modes.hpp"
#include "core/gate_params.hpp"
#include "core/mode_table_grid.hpp"
#include "core/process_point.hpp"
#include "ode/rk45.hpp"
#include "sim/two_exp_crossing.hpp"

namespace charlie {
namespace {

using core::GateModeTables;
using core::GateParams;
using core::GateState;
using core::ModeTableGrid;
using core::ProcessPoint;

// Interior points off every grid plane: a slow die, a fast die, and a skewed
// one with the axes pulling in opposite directions.
std::vector<ProcessPoint> off_nominal_points() {
  ProcessPoint slow;
  slow.vdd_scale = 0.937;
  slow.vth_shift = 0.021;
  slow.drive_scale = 0.915;
  ProcessPoint fast;
  fast.vdd_scale = 1.063;
  fast.vth_shift = -0.017;
  fast.drive_scale = 1.088;
  ProcessPoint skew;
  skew.vdd_scale = 1.029;
  skew.vth_shift = 0.033;
  skew.drive_scale = 0.942;
  return {slow, fast, skew};
}

// The span sim::ProcessVariation builds grids for (+/- 3.5 sigma, few-percent
// sigmas); same extents as tests/core/test_mode_table_grid.cpp.
ModeTableGrid::Spec variation_spec() {
  ModeTableGrid::Spec spec;
  spec.vdd_scale = {0.9, 1.1, 3};
  spec.vth_shift = {-0.04, 0.04, 3};
  spec.drive_scale = {0.85, 1.15, 3};
  return spec;
}

ode::Vec2 rk45_state(const ode::AffineOde2& sys, const ode::Vec2& x0,
                     double t) {
  const ode::OdeRhs rhs = [&](double, std::span<const double> x,
                              std::span<double> dx) {
    const ode::Vec2 d = sys.derivative({x[0], x[1]});
    dx[0] = d.x;
    dx[1] = d.y;
  };
  const double x0_arr[] = {x0.x, x0.y};
  ode::Rk45Options opts;
  opts.rtol = 1e-11;
  opts.atol = 1e-14;
  const auto r = ode::integrate_rk45(rhs, x0_arr, 0.0, t, opts);
  return {r.x_final[0], r.x_final[1]};
}

// The rest -> active transition that swings the output through vth: a NOR
// rests all-low (output high) and falls when one input rises; a NAND rests
// all-high (output low) and rises when one input drops.
struct Transition {
  GateState rest;
  GateState active;
};

Transition output_swing(const GateParams& p) {
  const GateState all = core::gate_n_states(p.n_inputs()) - 1;
  if (p.topology == core::GateTopology::kNorLike) {
    return {0u, 1u};
  }
  return {all, core::gate_state_with(all, 0, false)};
}

// Crossing offset of the active mode entered at x_ref, computed exactly the
// way the event loop does: scalar two-exponential expansion + solver.
double crossing_tau(const GateModeTables& tabs, GateState active,
                    const ode::Vec2& x_ref) {
  const auto vo = sim::two_exp_expand(tabs.state_table(active), x_ref);
  EXPECT_TRUE(vo.valid);
  const auto c =
      sim::two_exp_next_crossing(vo, tabs.vth(), 0.0, tabs.horizon());
  EXPECT_TRUE(c.has_value());
  return c ? c->tau : 0.0;
}

TEST(ProcessRk45, DerivedModeOdesMatchRk45OffNominal) {
  // GateParams::derive_for rescales resistances, supply, and delta_min; the
  // mode ODEs built from the derived set must still agree with their closed
  // forms in every state, at every point.
  for (const GateParams& nominal :
       {GateParams::nor2_reference(), GateParams::nand3_reference()}) {
    for (const ProcessPoint& p : off_nominal_points()) {
      const GateParams derived = nominal.derive_for(p);
      const GateState n_states = core::gate_n_states(derived.n_inputs());
      for (GateState s = 0; s < n_states; ++s) {
        const auto sys = core::gate_mode_ode(derived, s);
        const ode::Vec2 x0{0.8 * derived.vdd, 0.45 * derived.vdd};
        for (double t : {5e-12, 30e-12, 120e-12}) {
          const ode::Vec2 exact = sys.state_at(t, x0);
          const ode::Vec2 numeric = rk45_state(sys, x0, t);
          EXPECT_NEAR(exact.x, numeric.x, 1e-8)
              << core::gate_state_name(s, derived.n_inputs()) << " t=" << t;
          EXPECT_NEAR(exact.y, numeric.y, 1e-8)
              << core::gate_state_name(s, derived.n_inputs()) << " t=" << t;
        }
      }
    }
  }
}

TEST(ProcessRk45, ExactTablesReproduceRk45CrossingsOffNominal) {
  // rederive_at + the two-exponential solver against root-finding on RK45
  // trajectories of the derived ODE: the analytic pipeline carries no
  // process-dependent approximation, so agreement is at solver tolerance.
  for (const GateParams& nominal :
       {GateParams::nor2_reference(), GateParams::nand3_reference()}) {
    for (const ProcessPoint& p : off_nominal_points()) {
      GateModeTables tabs(nominal);
      tabs.rederive_at(nominal, p);
      const Transition tr = output_swing(nominal);
      const ode::Vec2 x_ref = tabs.state_table(tr.rest).steady;
      const double tau = crossing_tau(tabs, tr.active, x_ref);

      const GateParams derived = nominal.derive_for(p);
      const auto sys = core::gate_mode_ode(derived, tr.active);
      const double vth = tabs.vth();
      const bool falling = rk45_state(sys, x_ref, 1e-15).y > vth;
      double lo = 1e-15;
      double hi = tabs.horizon();
      ASSERT_GT(hi, lo);
      for (int i = 0; i < 60; ++i) {
        const double mid = 0.5 * (lo + hi);
        const bool above = rk45_state(sys, x_ref, mid).y > vth;
        if (above == falling) {
          lo = mid;
        } else {
          hi = mid;
        }
      }
      const double tau_rk = 0.5 * (lo + hi);
      EXPECT_NEAR(tau, tau_rk, 1e-13) << "vdd_scale=" << p.vdd_scale;
    }
  }
}

TEST(ProcessRk45, GridCrossingLevelTracksExactDerivation) {
  // The bound the statistical pipeline relies on: crossing times computed
  // from grid-interpolated tables stay within 1% of exact per-sample
  // derivation at interior points of the variation span (the per-field
  // interpolation error bound lives in tests/core/test_mode_table_grid.cpp).
  for (const GateParams& nominal :
       {GateParams::nor2_reference(), GateParams::nand2_reference(),
        GateParams::nor3_reference(), GateParams::nand3_reference()}) {
    const ModeTableGrid grid(nominal, variation_spec());
    for (const ProcessPoint& p : off_nominal_points()) {
      GateModeTables exact(nominal);
      exact.rederive_at(nominal, p);
      const auto blended = grid.interpolate(p);
      const Transition tr = output_swing(nominal);
      // Identical entry state isolates the crossing-level error to the
      // interpolated expansion itself.
      const ode::Vec2 x_ref = exact.state_table(tr.rest).steady;
      const double tau_exact = crossing_tau(exact, tr.active, x_ref);
      const double tau_grid = crossing_tau(*blended, tr.active, x_ref);
      ASSERT_GT(tau_exact, 0.0);
      EXPECT_LT(std::abs(tau_grid - tau_exact) / tau_exact, 1e-2)
          << "vdd_scale=" << p.vdd_scale << " exact=" << tau_exact
          << " grid=" << tau_grid;
    }
  }
}

TEST(ProcessRk45, CrossingTimesOrderPhysically) {
  // Slow die crosses later than nominal, fast die earlier -- through the
  // full derive -> expand -> solve pipeline.
  const GateParams nominal = GateParams::nor2_reference();
  const Transition tr = output_swing(nominal);
  const auto points = off_nominal_points();
  auto tau_at = [&](const ProcessPoint& p) {
    GateModeTables tabs(nominal);
    tabs.rederive_at(nominal, p);
    return crossing_tau(tabs, tr.active,
                        tabs.state_table(tr.rest).steady);
  };
  const double slow = tau_at(points[0]);
  const double fast = tau_at(points[1]);
  const double nom = tau_at(ProcessPoint::nominal());
  EXPECT_GT(slow, nom);
  EXPECT_LT(fast, nom);
}

}  // namespace
}  // namespace charlie
