// End-to-end pipeline tests: analog substrate -> characterization -> fit ->
// hybrid channel -> accuracy evaluation (the full Section VI workflow).
#include <gtest/gtest.h>

#include "core/delay_model.hpp"
#include "core/parametrize.hpp"
#include "sim/accuracy.hpp"
#include "sim/hybrid_nor_channel.hpp"
#include "sim/nor_models.hpp"
#include "sim/run_channel.hpp"
#include "spice/characterize.hpp"
#include "waveform/digitize.hpp"
#include "waveform/metrics.hpp"

namespace charlie {
namespace {

// Shared fixture computing the expensive calibration once.
class EndToEnd : public ::testing::Test {
 protected:
  struct Calibration {
    spice::Technology tech = spice::Technology::freepdk15_like();
    spice::SubstrateCharacteristics substrate;
    core::FitResult fit;
  };

  static const Calibration& calib() {
    static const Calibration c = [] {
      Calibration out;
      out.substrate = spice::measure_characteristics(out.tech);
      core::CharacteristicDelays targets;
      targets.fall_minus_inf = out.substrate.fall_minus_inf;
      targets.fall_zero = out.substrate.fall_zero;
      targets.fall_plus_inf = out.substrate.fall_plus_inf;
      targets.rise_minus_inf = out.substrate.rise_minus_inf;
      targets.rise_zero = out.substrate.rise_zero;
      targets.rise_plus_inf = out.substrate.rise_plus_inf;
      core::FitOptions opts;
      opts.vdd = out.tech.vdd;
      opts.nelder_mead_evaluations = 1500;
      out.fit = core::fit_nor_params(targets, opts);
      return out;
    }();
    return c;
  }
};

TEST_F(EndToEnd, FitMatchesSubstrateFallingCurve) {
  // Fitted hybrid model vs direct analog measurement across Delta: the
  // falling curve is the paper's "very good fit" case (Fig 5).
  const core::NorDelayModel model(calib().fit.params);
  for (double delta : {-80e-12, -30e-12, 0.0, 30e-12, 80e-12}) {
    const double analog =
        spice::measure_falling_delay(calib().tech, delta).delay;
    const double hybrid = model.falling_delay(delta).delay;
    EXPECT_NEAR(hybrid, analog, 5e-12)
        << "delta=" << delta << ": model deviates from substrate";
  }
}

TEST_F(EndToEnd, FitReproducesSisAsymmetries) {
  const auto& s = calib().substrate;
  const auto& a = calib().fit.achieved;
  // Orderings must carry over even if absolute errors exist.
  EXPECT_LT(a.fall_zero, a.fall_minus_inf);
  EXPECT_LT(a.fall_minus_inf, a.fall_plus_inf);
  EXPECT_LT(a.rise_plus_inf, a.rise_minus_inf);
  // And each achieved value is within a few ps of the target.
  EXPECT_NEAR(a.fall_zero, s.fall_zero, 2e-12);
  EXPECT_NEAR(a.fall_minus_inf, s.fall_minus_inf, 2e-12);
  EXPECT_NEAR(a.rise_plus_inf, s.rise_plus_inf, 3e-12);
}

TEST_F(EndToEnd, HybridChannelTracksAnalogOnRandomTrace) {
  // A short random trace: the fitted hybrid channel's output must stay
  // close to the digitized analog output (mean |offset| well below the
  // gate delay).
  const auto& cal = calib();
  util::Rng rng(7777);
  waveform::TraceConfig cfg;
  cfg.mu = 300e-12;
  cfg.sigma = 100e-12;
  cfg.n_transitions = 30;
  cfg.t_start = 2.0 * cal.tech.input_rise_time;
  const auto traces = waveform::generate_traces(cfg, 2, rng);
  const double t_end =
      std::max(traces[0].transitions().back(),
               traces[1].transitions().back()) + 500e-12;
  spice::TransientOptions topt;
  topt.v_abstol = 5e-5;
  topt.v_reltol = 5e-4;
  const auto analog =
      spice::run_nor2(cal.tech, traces[0], traces[1], t_end, topt);
  const auto golden = waveform::digitize(analog.vo, cal.tech.vth());
  const auto a_dig = waveform::digitize(analog.va, cal.tech.vth());
  const auto b_dig = waveform::digitize(analog.vb, cal.tech.vth());

  sim::HybridNorChannel channel(cal.fit.params);
  const auto out = sim::run_gate_channel(channel, a_dig, b_dig, 0.0, t_end);

  const auto stats = waveform::pair_edges(golden, out, 30e-12);
  EXPECT_EQ(stats.unmatched_reference, 0u);
  EXPECT_EQ(stats.unmatched_model, 0u);
  EXPECT_LT(stats.mean_abs_offset, 5e-12);
}

TEST_F(EndToEnd, AccuracyRankingShortPulses) {
  // The paper's headline (Fig 7, short pulses): hybrid model with
  // delta_min beats the inertial baseline; the stripped variant does not.
  const auto& cal = calib();
  sim::SisNorDelays sis;
  sis.rise = 0.5 * (cal.substrate.rise_minus_inf + cal.substrate.rise_plus_inf);
  sis.fall = 0.5 * (cal.substrate.fall_minus_inf + cal.substrate.fall_plus_inf);
  core::NorParams stripped = cal.fit.params;
  stripped.delta_min = 0.0;

  std::vector<sim::ModelUnderTest> models;
  models.push_back(
      {"inertial", [&] { return sim::make_inertial_nor(sis); }, true});
  models.push_back({"hm", [&] {
                      return std::make_unique<sim::HybridNorChannel>(
                          cal.fit.params);
                    },
                    false});
  models.push_back({"hm_stripped", [&] {
                      return std::make_unique<sim::HybridNorChannel>(stripped);
                    },
                    false});

  waveform::TraceConfig cfg;
  cfg.mu = 150e-12;
  cfg.sigma = 70e-12;
  cfg.n_transitions = 60;
  sim::AccuracyOptions opts;
  opts.repetitions = 2;
  const auto result =
      sim::evaluate_accuracy(cal.tech, cfg, models, opts);
  ASSERT_EQ(result.models.size(), 3u);
  EXPECT_DOUBLE_EQ(result.models[0].normalized, 1.0);
  EXPECT_LT(result.models[1].normalized, 0.9);   // HM clearly better
  EXPECT_GT(result.models[2].normalized,
            result.models[1].normalized);        // stripped clearly worse
}

TEST_F(EndToEnd, DeterministicAcrossRuns) {
  const auto& cal = calib();
  sim::SisNorDelays sis{50e-12, 45e-12};
  std::vector<sim::ModelUnderTest> models;
  models.push_back(
      {"inertial", [&] { return sim::make_inertial_nor(sis); }, true});
  waveform::TraceConfig cfg;
  cfg.mu = 200e-12;
  cfg.sigma = 50e-12;
  cfg.n_transitions = 20;
  sim::AccuracyOptions opts;
  opts.repetitions = 1;
  const auto r1 = sim::evaluate_accuracy(cal.tech, cfg, models, opts);
  const auto r2 = sim::evaluate_accuracy(cal.tech, cfg, models, opts);
  EXPECT_DOUBLE_EQ(r1.models[0].mean_area, r2.models[0].mean_area);
}

}  // namespace
}  // namespace charlie
