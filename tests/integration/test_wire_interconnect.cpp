// The interconnect subsystem end to end: the collapsed hybrid wire against
// the full-ladder SPICE golden (spice::build_rc_line), a transistor-level
// driver -> wire -> receiver handoff chain, the Fig-7-style deviation-area
// ranking (hybrid wire < inertial lumped load), and netlist-level wiring
// through CircuitBuilder + BatchRunner.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "cell/cell_library.hpp"
#include "sim/accuracy.hpp"
#include "sim/batch_runner.hpp"
#include "sim/circuit_builder.hpp"
#include "sim/inertial.hpp"
#include "sim/pure_delay.hpp"
#include "sim/run_channel.hpp"
#include "sim/wire_channel.hpp"
#include "spice/characterize.hpp"
#include "spice/rc_line.hpp"
#include "util/error.hpp"
#include "waveform/digitize.hpp"
#include "waveform/edges.hpp"

namespace charlie {
namespace {

wire::WireParams test_wire() {
  wire::WireParams p = wire::WireParams::reference();
  return p;
}

spice::RcLineSpec spec_of(const wire::WireParams& p) {
  spice::RcLineSpec spec;
  spec.r_total = p.r_total;
  spec.c_total = p.c_total;
  spec.n_sections = p.n_sections;
  spec.r_drive = p.r_drive;
  spec.c_load = p.c_load;
  spec.vdd = p.vdd;
  return spec;
}

spice::TransientOptions tight_transient() {
  spice::TransientOptions opts;
  opts.v_abstol = 1e-6;
  opts.v_reltol = 1e-6;
  return opts;
}

TEST(WireInterconnect, StepCrossingsMatchTheFullLadderGolden) {
  // Near-step drive isolates the collapse error: the model's V_th
  // crossings must match the full N-section SPICE ladder within the
  // gate-tolerance regime (single-digit ps on a ~60 ps Elmore wire).
  const wire::WireParams p = test_wire();
  const auto tables = wire::WireModeTables::make(p);
  const waveform::DigitalTrace drive(false, {100e-12, 700e-12});
  const auto golden_analog =
      spice::run_rc_line(spec_of(p), drive, 1e-12, 1.5e-9, tight_transient());
  const auto golden = waveform::digitize(golden_analog.vout, p.vth());

  sim::WireChannel channel(tables);
  const auto out = sim::run_sis_channel(channel, drive, 0.0, 1.5e-9);

  ASSERT_EQ(golden.n_transitions(), 2u);
  ASSERT_EQ(out.n_transitions(), 2u);
  for (std::size_t k = 0; k < 2; ++k) {
    EXPECT_NEAR(out.transitions()[k], golden.transitions()[k], 2e-12)
        << "crossing " << k;
  }
}

TEST(WireInterconnect, CollapseErrorStaysSmallAcrossAnRcSweep) {
  // The collapse must track the full ladder over a geometry sweep, not
  // just the reference point: crossing error under 5% of the Elmore delay.
  for (double scale : {0.5, 1.0, 2.0}) {
    for (double drive_scale : {0.0, 1.0, 3.0}) {
      wire::WireParams p = test_wire();
      p.r_total *= scale;
      p.c_total *= scale;
      p.r_drive *= drive_scale;
      const auto tables = wire::WireModeTables::make(p);
      const double elmore = tables->elmore_delay();
      const waveform::DigitalTrace drive(false, {100e-12});
      const double t_end = 100e-12 + 30.0 * elmore;
      const auto golden_analog = spice::run_rc_line(
          spec_of(p), drive, 1e-12, t_end, tight_transient());
      const auto golden = waveform::digitize(golden_analog.vout, p.vth());
      sim::WireChannel channel(tables);
      const auto out = sim::run_sis_channel(channel, drive, 0.0, t_end);
      ASSERT_EQ(golden.n_transitions(), 1u)
          << "scale=" << scale << " drive=" << drive_scale;
      ASSERT_EQ(out.n_transitions(), 1u)
          << "scale=" << scale << " drive=" << drive_scale;
      EXPECT_NEAR(out.transitions()[0], golden.transitions()[0],
                  0.05 * elmore)
          << "scale=" << scale << " drive=" << drive_scale;
    }
  }
}

TEST(WireInterconnect, DriverWireReceiverChainTracksTheAnalogHandoff) {
  // Full handoff chain: a transistor-level NOR2 drives the full ladder
  // (its analog output is the ladder's source); the hybrid chain sees only
  // the digitized NOR2 output yet must reproduce the wire's far-end
  // crossings -- the receiver's mode-switch times -- to a few ps.
  const auto tech = spice::Technology::freepdk15_like();
  wire::WireParams p = test_wire();

  // Analog truth: NOR2 transient, then its vo waveform drives the ladder.
  const double t_end = 1.2e-9;
  std::vector<waveform::DigitalTrace> in;
  in.emplace_back(false, std::vector<double>{100e-12, 600e-12});
  in.emplace_back(false, std::vector<double>{});
  const auto gate =
      spice::run_gate_cell(tech, spice::CellKind::kNor2, in, t_end,
                           tight_transient());
  spice::Netlist ladder;
  const auto nodes = spice::build_rc_line(ladder, spec_of(p));
  ladder.add_vsource_pwl(nodes.in, spice::kGround, gate.vo);
  spice::TransientOptions opts = tight_transient();
  opts.t_end = t_end;
  const auto golden_tr = spice::transient_analysis(
      ladder, {ladder.node_name(nodes.out)}, opts);
  const auto golden = waveform::digitize(
      golden_tr.wave(ladder.node_name(nodes.out)), p.vth());

  // Drive-shape handoff: estimate the driver's output edge time constant
  // from the 50% -> 75%-swing crossing gap (exponential edge: gap =
  // tau ln 2) of both edges; the wire model turns it into the first-moment
  // centroid correction.
  const auto at_half = waveform::digitize(gate.vo, 0.5 * tech.vdd);
  const auto at_low = waveform::digitize(gate.vo, 0.25 * tech.vdd);
  const auto at_high = waveform::digitize(gate.vo, 0.75 * tech.vdd);
  ASSERT_GE(at_half.n_transitions(), 2u);
  const double tau_fall =
      (at_low.transitions()[0] - at_half.transitions()[0]) / std::log(2.0);
  const double tau_rise =
      (at_high.transitions()[1] - at_half.transitions()[1]) / std::log(2.0);
  EXPECT_GT(tau_fall, 0.0);
  EXPECT_GT(tau_rise, 0.0);
  p.t_drive = 0.5 * (tau_fall + tau_rise);

  // Hybrid chain: the digitized driver output switches the wire's drive
  // state (the analog handoff point under test).
  const auto driver_digital = waveform::digitize(gate.vo, tech.vth());
  sim::WireChannel channel(wire::WireModeTables::make(p));
  const auto out = sim::run_sis_channel(channel, driver_digital, 0.0, t_end);

  ASSERT_EQ(golden.n_transitions(), out.n_transitions());
  ASSERT_GE(out.n_transitions(), 2u);
  for (std::size_t k = 0; k < out.n_transitions(); ++k) {
    EXPECT_NEAR(out.transitions()[k], golden.transitions()[k], 5e-12)
        << "crossing " << k;
  }
}

TEST(WireInterconnect, HybridWireBeatsInertialLumpedLoadOnDeviationArea) {
  // The Fig-7-style experiment: on random traces whose pulse widths are
  // comparable to the wire delay, the hybrid wire channel's deviation area
  // against the full-ladder golden must be strictly below the inertial
  // lumped-load baseline -- on every geometry of a small RC sweep.
  for (double scale : {1.0, 2.0}) {
    wire::WireParams p = test_wire();
    p.r_total *= scale;
    p.c_total *= scale;
    const auto tables = wire::WireModeTables::make(p);
    const double elmore = tables->elmore_delay();

    std::vector<sim::WireModelUnderTest> models;
    models.push_back({"hybrid-wire",
                      [&] { return std::make_unique<sim::WireChannel>(tables); },
                      false});
    models.push_back({"inertial-lumped",
                      [&] {
                        return std::make_unique<sim::InertialChannel>(elmore,
                                                                      elmore);
                      },
                      true});
    models.push_back({"pure-delay",
                      [&] {
                        return std::make_unique<sim::PureDelayChannel>(elmore);
                      },
                      false});

    waveform::TraceConfig config;
    config.mu = 3.0 * elmore;  // heavy short-pulse content vs the wire RC
    config.sigma = 1.5 * elmore;
    config.n_transitions = 30;

    sim::WireAccuracyOptions options;
    options.repetitions = 2;
    const auto result =
        sim::evaluate_wire_accuracy(p, config, models, options);

    ASSERT_EQ(result.models.size(), 3u);
    const auto& hybrid = result.models[0];
    const auto& inertial = result.models[1];
    EXPECT_GT(result.golden_transitions, 0);
    EXPECT_EQ(inertial.normalized, 1.0);
    EXPECT_LT(hybrid.normalized, 1.0)
        << "hybrid must beat the inertial lumped-load baseline (scale="
        << scale << ")";
    EXPECT_GT(hybrid.mean_area, 0.0);
  }
}

TEST(WireInterconnect, NetlistWiresBuildAndDelayTheChain) {
  const auto lib = std::make_shared<const cell::CellLibrary>(
      cell::CellLibrary::reference());
  const sim::CircuitBuilder builder(lib);
  const char* with_wire =
      "input(a, b)\n"
      "output(y)\n"
      "NOR2(n0, a, b)\n"
      "WIRE(n0w, n0, r=15e3, c=3e-15, sections=8, rdrive=10e3, "
      "cload=300e-18)\n"
      "INV(y, n0w)\n";
  const char* without_wire =
      "input(a, b)\n"
      "output(y)\n"
      "NOR2(n0, a, b)\n"
      "INV(y, n0)\n";
  const auto wired = builder.build_text(with_wire);
  const auto plain = builder.build_text(without_wire);
  EXPECT_EQ(builder.n_wire_tables(), 1u);

  std::vector<waveform::DigitalTrace> stim;
  stim.emplace_back(false, std::vector<double>{100e-12, 700e-12});
  stim.emplace_back(false, std::vector<double>{});
  const auto wired_res = wired->simulate(stim, 0.0, 3e-9);
  const auto plain_res = plain->simulate(stim, 0.0, 3e-9);
  const auto& wired_y = wired_res.trace(wired->find_net("y"));
  const auto& plain_y = plain_res.trace(plain->find_net("y"));
  ASSERT_EQ(wired_y.n_transitions(), 2u);
  ASSERT_EQ(plain_y.n_transitions(), 2u);
  // The wire inserts a positive, physically plausible extra delay on every
  // edge (between a tenth of and ten Elmore delays).
  const double elmore = wire::WireParams::reference().elmore_delay();
  for (std::size_t k = 0; k < 2; ++k) {
    const double extra = wired_y.transitions()[k] - plain_y.transitions()[k];
    EXPECT_GT(extra, 0.1 * elmore) << k;
    EXPECT_LT(extra, 10.0 * elmore) << k;
  }
}

TEST(WireInterconnect, BuilderValidatesWires) {
  const auto lib = std::make_shared<const cell::CellLibrary>(
      cell::CellLibrary::reference());
  const sim::CircuitBuilder builder(lib);
  // Bad parameters (zero resistance).
  EXPECT_THROW(builder.build_text("input(a)\n"
                                  "WIRE(w, a, r=0, c=1e-15)\n"),
               ConfigError);
  // Duplicate driver.
  EXPECT_THROW(builder.build_text("input(a)\n"
                                  "INV(x, a)\n"
                                  "WIRE(x, a, r=1e3, c=1e-15)\n"),
               ConfigError);
  // Undriven wire input.
  EXPECT_THROW(builder.build_text("input(a)\n"
                                  "WIRE(w, ghost, r=1e3, c=1e-15)\n"),
               ConfigError);
  // Cycle through a wire.
  EXPECT_THROW(builder.build_text("input(a)\n"
                                  "NAND2(x, a, w)\n"
                                  "WIRE(w, x, r=1e3, c=1e-15)\n"),
               ConfigError);
  // Undriven declared output.
  EXPECT_THROW(builder.build_text("input(a)\noutput(ghost)\nINV(x, a)\n"),
               ConfigError);
  // All satisfied: wires, outputs, and gates in any order.
  EXPECT_NO_THROW(builder.build_text("output(y)\n"
                                     "INV(y, w)\n"
                                     "WIRE(w, a, r=1e3, c=1e-15)\n"
                                     "input(a)\n"));
}

TEST(WireInterconnect, BatchRunnerIsThreadCountInvariantWithWires) {
  const auto lib = std::make_shared<const cell::CellLibrary>(
      cell::CellLibrary::reference());
  const sim::CircuitBuilder builder(lib);
  const auto desc = cell::parse_netlist(
      "input(a, b)\n"
      "output(y, n0w)\n"
      "NOR2(n0, a, b)\n"
      "WIRE(n0w, n0, r=15e3, c=3e-15, sections=8, rdrive=10e3, "
      "cload=300e-18)\n"
      "INV(y, n0w)\n");
  auto factory = [&] { return builder.build(desc); };

  sim::BatchConfig config;
  config.trace.mu = 250e-12;
  config.trace.sigma = 80e-12;
  config.trace.n_transitions = 50;
  config.n_runs = 6;
  config.base_seed = 7;

  auto run = [&](std::size_t n_threads) {
    config.n_threads = n_threads;
    sim::BatchRunner runner(factory, desc.outputs, config);
    return runner.run();
  };
  const auto serial = run(1);
  const auto parallel = run(4);
  ASSERT_EQ(serial.nets.size(), 2u);
  EXPECT_GT(serial.nets[0].transitions, 0);
  for (std::size_t n = 0; n < serial.nets.size(); ++n) {
    EXPECT_EQ(serial.nets[n].transitions, parallel.nets[n].transitions);
    EXPECT_EQ(serial.nets[n].pulse_width.bins(),
              parallel.nets[n].pulse_width.bins());
    EXPECT_EQ(serial.nets[n].response_delay.sum(),
              parallel.nets[n].response_delay.sum());
  }
  EXPECT_EQ(serial.total_events, parallel.total_events);
  // Wire tables were derived once, not once per clone.
  EXPECT_EQ(builder.n_wire_tables(), 1u);
}

}  // namespace
}  // namespace charlie
