// End-to-end validation of the generalized N-input hybrid gates (NOR3,
// NAND2, NAND3): closed-form mode trajectories against RK45, the fitted
// channel against digitized SPICE golden traces, and the Fig-7-style
// deviation-area ranking against the SIS baselines.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/gate_delay.hpp"
#include "core/gate_parametrize.hpp"
#include "ode/rk45.hpp"
#include "sim/accuracy.hpp"
#include "sim/gate_models.hpp"
#include "sim/hybrid_gate_channel.hpp"
#include "sim/run_channel.hpp"
#include "spice/characterize.hpp"
#include "util/math.hpp"
#include "waveform/digitize.hpp"
#include "waveform/metrics.hpp"

namespace charlie {
namespace {

using core::GateParams;
using core::GateState;
using core::GateTopology;
using spice::CellKind;

core::GateTopology topology_of(CellKind cell) {
  return spice::cell_is_nand(cell) ? GateTopology::kNandLike
                                   : GateTopology::kNorLike;
}

// --- RK45 cross-check of every mode of every new gate --------------------

ode::Vec2 rk45_state(const core::GateParams& p, GateState s,
                     const ode::Vec2& x0, double t) {
  const auto sys = core::gate_mode_ode(p, s);
  const ode::OdeRhs rhs = [&](double, std::span<const double> x,
                              std::span<double> dx) {
    const ode::Vec2 d = sys.derivative({x[0], x[1]});
    dx[0] = d.x;
    dx[1] = d.y;
  };
  const double x0_arr[] = {x0.x, x0.y};
  ode::Rk45Options opts;
  opts.rtol = 1e-11;
  opts.atol = 1e-14;
  const auto r = ode::integrate_rk45(rhs, x0_arr, 0.0, t, opts);
  return {r.x_final[0], r.x_final[1]};
}

TEST(MultiInputGates, ClosedFormMatchesRk45ForAllModes) {
  for (const GateParams& p :
       {GateParams::nor3_reference(), GateParams::nand2_reference(),
        GateParams::nand3_reference()}) {
    const ode::Vec2 x0{0.65, 0.37};  // generic interior state
    for (GateState s = 0; s < core::gate_n_states(p.n_inputs()); ++s) {
      const auto sys = core::gate_mode_ode(p, s);
      for (double t : {5e-12, 25e-12, 80e-12, 300e-12}) {
        const ode::Vec2 exact = sys.state_at(t, x0);
        const ode::Vec2 numeric = rk45_state(p, s, x0, t);
        EXPECT_NEAR(exact.x, numeric.x, 1e-8)
            << p.to_string() << " " << core::gate_state_name(s, p.n_inputs())
            << " t=" << t;
        EXPECT_NEAR(exact.y, numeric.y, 1e-8)
            << p.to_string() << " " << core::gate_state_name(s, p.n_inputs())
            << " t=" << t;
      }
    }
  }
}

// --- substrate calibration shared across the SPICE-golden tests ----------

struct CellCalibration {
  spice::Technology tech = spice::Technology::freepdk15_like();
  spice::GateSisTargets targets;
  core::GateFitResult fit;
};

CellCalibration calibrate(CellKind cell) {
  CellCalibration out;
  out.targets = spice::measure_gate_targets(out.tech, cell);
  core::GateTargets targets;
  targets.fall = out.targets.fall;
  targets.rise = out.targets.rise;
  targets.fall_all = out.targets.fall_all;
  targets.rise_all = out.targets.rise_all;
  core::GateFitOptions opts;
  opts.vdd = out.tech.vdd;
  opts.nelder_mead_evaluations = 1500;
  out.fit = core::fit_gate_params(topology_of(cell), targets, opts);
  return out;
}

const CellCalibration& calib(CellKind cell) {
  switch (cell) {
    case CellKind::kNor3: {
      static const CellCalibration c = calibrate(CellKind::kNor3);
      return c;
    }
    case CellKind::kNand3: {
      static const CellCalibration c = calibrate(CellKind::kNand3);
      return c;
    }
    default: {
      static const CellCalibration c = calibrate(CellKind::kNand2);
      return c;
    }
  }
}

class MultiInputCell : public ::testing::TestWithParam<CellKind> {};

TEST_P(MultiInputCell, FitReproducesSubstrateTargets) {
  // The lumped single-node stack cannot distinguish every scenario the
  // 2-internal-node substrate produces (e.g. NOR3's rise[0] and rise[1]
  // share one model trajectory), so the fit is a compromise: every target
  // within ~12%, the paper-grade accuracy for the directions the structure
  // can express.
  const auto& cal = calib(GetParam());
  const int n = spice::cell_arity(GetParam());
  auto tol = [](double target) { return std::max(3e-12, 0.12 * target); };
  for (int i = 0; i < n; ++i) {
    EXPECT_NEAR(cal.fit.achieved.fall[i], cal.targets.fall[i],
                tol(cal.targets.fall[i]))
        << "fall[" << i << "]";
    EXPECT_NEAR(cal.fit.achieved.rise[i], cal.targets.rise[i],
                tol(cal.targets.rise[i]))
        << "rise[" << i << "]";
  }
  EXPECT_NEAR(cal.fit.achieved.fall_all, cal.targets.fall_all,
              tol(cal.targets.fall_all));
  EXPECT_NEAR(cal.fit.achieved.rise_all, cal.targets.rise_all,
              tol(cal.targets.rise_all));
}

TEST_P(MultiInputCell, HybridChannelTracksAnalogOnRandomTrace) {
  // A short random trace on every input: the fitted hybrid channel's
  // output must stay close to the digitized analog output.
  const CellKind cell = GetParam();
  const auto& cal = calib(cell);
  const int n = spice::cell_arity(cell);
  util::Rng rng(4242);
  waveform::TraceConfig cfg;
  cfg.mu = 300e-12;
  cfg.sigma = 100e-12;
  cfg.n_transitions = 24;
  cfg.t_start = 2.0 * cal.tech.input_rise_time;
  const auto traces = waveform::generate_traces(cfg, n, rng);
  double t_last = cfg.t_start;
  for (const auto& trace : traces) {
    if (!trace.empty()) t_last = std::max(t_last, trace.transitions().back());
  }
  const double t_end = t_last + 500e-12;
  spice::TransientOptions topt;
  topt.v_abstol = 5e-5;
  topt.v_reltol = 5e-4;
  const auto analog = spice::run_gate_cell(cal.tech, cell, traces, t_end, topt);
  const auto golden = waveform::digitize(analog.vo, cal.tech.vth());
  std::vector<waveform::DigitalTrace> digitized;
  for (const auto& wave : analog.vin) {
    digitized.push_back(waveform::digitize(wave, cal.tech.vth()));
  }

  sim::HybridGateChannel channel(cal.fit.params);
  const auto out = sim::run_gate_channel(channel, digitized, 0.0, t_end);

  const auto stats = waveform::pair_edges(golden, out, 40e-12);
  // Every substrate edge must be reproduced; the model may add at most one
  // marginal runt pulse (V_O grazing V_th resolves differently within a
  // few mV between model and substrate).
  EXPECT_EQ(stats.unmatched_reference, 0u) << spice::cell_name(cell);
  EXPECT_LE(stats.unmatched_model, 2u) << spice::cell_name(cell);
  EXPECT_LT(stats.mean_abs_offset, 10e-12) << spice::cell_name(cell);
}

TEST_P(MultiInputCell, HybridBeatsPureAndInertialOnMisSweep) {
  // The acceptance experiment: on an MIS-heavy waveform configuration the
  // hybrid channel's deviation area must beat both the inertial baseline
  // and the pure-delay channel, for every new gate.
  const CellKind cell = GetParam();
  const auto& cal = calib(cell);
  const int n = spice::cell_arity(cell);
  const GateTopology topology = topology_of(cell);

  sim::SisGateDelays sis;
  sis.fall = math::mean(cal.targets.fall);
  sis.rise = math::mean(cal.targets.rise);

  std::vector<sim::ModelUnderTest> models;
  models.push_back({"inertial",
                    [&] { return sim::make_inertial_gate(topology, n, sis); },
                    true});
  models.push_back({"pure",
                    [&] { return sim::make_pure_gate(topology, n, sis); },
                    false});
  models.push_back({"hm",
                    [&] {
                      return std::make_unique<sim::HybridGateChannel>(
                          cal.fit.params);
                    },
                    false});

  // Pulse widths comfortably above the slowest gate delay (NAND3 falls in
  // ~120 ps) so the golden output actually switches, with LOCAL-mode
  // generation piling transitions of different inputs close together --
  // the MIS-heavy regime where single-input channels fail.
  waveform::TraceConfig cfg;
  cfg.mu = 400e-12;
  cfg.sigma = 200e-12;
  cfg.n_transitions = 40;
  sim::AccuracyOptions opts;
  opts.repetitions = 2;
  const auto result =
      sim::evaluate_gate_accuracy(cal.tech, cell, cfg, models, opts);
  ASSERT_EQ(result.models.size(), 3u);
  EXPECT_DOUBLE_EQ(result.models[0].normalized, 1.0);
  EXPECT_LT(result.models[2].normalized, 0.9)
      << spice::cell_name(cell) << ": hybrid must clearly beat inertial";
  EXPECT_LT(result.models[2].normalized, result.models[1].normalized)
      << spice::cell_name(cell) << ": hybrid must beat pure delay";
  EXPECT_GT(result.golden_transitions, 0);
}

INSTANTIATE_TEST_SUITE_P(Cells, MultiInputCell,
                         ::testing::Values(CellKind::kNor3, CellKind::kNand2,
                                           CellKind::kNand3),
                         [](const auto& info) {
                           return spice::cell_name(info.param);
                         });

}  // namespace
}  // namespace charlie
