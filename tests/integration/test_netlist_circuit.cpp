// End-to-end validation of the cell-library front-end against the analog
// substrate: the mixed-arity netlist file ships in examples/netlists/,
// parses, builds via CellLibrary + CircuitBuilder, simulates under
// BatchRunner -- and cell characterization runs exactly once per cell no
// matter how many libraries, circuits, or worker clones consume it.
#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <set>

#include "cell/cell_library.hpp"
#include "cell/netlist.hpp"
#include "sim/batch_runner.hpp"
#include "sim/circuit_builder.hpp"
#include "sim/run_channel.hpp"
#include "spice/technology.hpp"
#include "util/csv.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "waveform/generator.hpp"

namespace charlie {
namespace {

const char* mixed_tree_path() {
  return CHARLIE_SOURCE_DIR "/examples/netlists/mixed_tree.net";
}

const spice::Technology& tech() {
  static const spice::Technology t = spice::Technology::freepdk15_like();
  return t;
}

// Characterized once for the whole test binary; later tests assert that
// re-characterizing is a cache hit.
const cell::CellLibrary& library() {
  static const cell::CellLibrary lib = [] {
    cell::CellLibrary::reset_characterization_cache();
    return cell::CellLibrary::characterize(tech());
  }();
  return lib;
}

TEST(NetlistCircuit, MixedArityNetlistFileParses) {
  const auto desc = cell::read_netlist_file(mixed_tree_path());
  EXPECT_EQ(desc.inputs.size(), 6u);
  ASSERT_GE(desc.n_gates(), 10u);  // the acceptance floor
  std::set<std::string> cells;
  for (const auto& inst : desc.instances) cells.insert(inst.cell);
  EXPECT_EQ(cells, (std::set<std::string>{"NOR2", "NOR3", "NAND2",
                                          "NAND3"}));
}

TEST(NetlistCircuit, CharacterizationRunsExactlyOncePerCell) {
  const auto& lib = library();  // first (and only) pipeline run
  for (const char* cell : {"NOR2", "NOR3", "NAND2", "NAND3", "INV"}) {
    EXPECT_EQ(cell::CellLibrary::n_characterization_runs(cell), 1) << cell;
  }
  // A second library for the same technology: pure cache hit, and the mode
  // tables are literally the same objects.
  const auto lib2 = cell::CellLibrary::characterize(tech());
  for (const char* cell : {"NOR2", "NOR3", "NAND2", "NAND3", "INV"}) {
    EXPECT_EQ(cell::CellLibrary::n_characterization_runs(cell), 1) << cell;
  }
  for (const char* cell : {"NOR2", "NOR3", "NAND2", "NAND3"}) {
    EXPECT_EQ(lib.spec(cell).tables.get(), lib2.spec(cell).tables.get())
        << cell;
  }
  EXPECT_EQ(lib.tech_fingerprint(), tech().fingerprint());
}

TEST(NetlistCircuit, FittedCellsAreDistinctPerCell) {
  // Sanity on the characterized library: topologies match the cells and
  // the fits are not accidentally shared.
  const auto& lib = library();
  EXPECT_EQ(lib.spec("NOR2").params.topology, core::GateTopology::kNorLike);
  EXPECT_EQ(lib.spec("NAND3").params.topology,
            core::GateTopology::kNandLike);
  EXPECT_EQ(lib.spec("NOR3").params.n_inputs(), 3);
  EXPECT_NE(lib.spec("NOR2").params.r_series[0],
            lib.spec("NAND2").params.r_series[0]);
  EXPECT_GT(lib.spec("INV").rise_delay, 0.0);
  EXPECT_GT(lib.spec("INV").fall_delay, 0.0);
}

TEST(NetlistCircuit, CsvCacheRoundTripPreservesTheFit) {
  const std::string path = ::testing::TempDir() + "charlie_cells.csv";
  std::remove(path.c_str());
  const auto& lib = library();
  lib.save_csv(path);

  // load_csv: bit-exact parameters, no pipeline runs.
  const auto loaded = cell::CellLibrary::load_csv(path);
  EXPECT_EQ(loaded.tech_fingerprint(), tech().fingerprint());
  for (const char* cell : {"NOR2", "NOR3", "NAND2", "NAND3"}) {
    EXPECT_EQ(lib.spec(cell).params.r_series,
              loaded.spec(cell).params.r_series)
        << cell;
    EXPECT_EQ(lib.spec(cell).params.r_parallel,
              loaded.spec(cell).params.r_parallel)
        << cell;
    EXPECT_EQ(lib.spec(cell).params.c_int, loaded.spec(cell).params.c_int);
    EXPECT_EQ(lib.spec(cell).params.c_out, loaded.spec(cell).params.c_out);
    EXPECT_EQ(lib.spec(cell).params.delta_min,
              loaded.spec(cell).params.delta_min);
  }
  EXPECT_EQ(lib.spec("INV").rise_delay, loaded.spec("INV").rise_delay);
  EXPECT_EQ(lib.spec("XOR2").fall_delay, loaded.spec("XOR2").fall_delay);

  // characterize_cached on a warm file: no new pipeline runs.
  const auto cached = cell::CellLibrary::characterize_cached(path, tech());
  EXPECT_EQ(cell::CellLibrary::n_characterization_runs("NOR2"), 1);
  EXPECT_EQ(cached.spec("NOR3").params.c_out, lib.spec("NOR3").params.c_out);

  // A stale fingerprint forces regeneration (served from the in-memory
  // cache here, so still no new pipeline runs) and rewrites the file.
  {
    std::string text = util::read_text_file(path);
    const auto at = text.find("fingerprint,0,");
    ASSERT_NE(at, std::string::npos);
    text.insert(at + std::string("fingerprint,0,").size(), "stale-");
    std::ofstream out(path);
    out << text;
  }
  const auto refreshed = cell::CellLibrary::characterize_cached(path, tech());
  EXPECT_EQ(refreshed.tech_fingerprint(), tech().fingerprint());
  EXPECT_EQ(cell::CellLibrary::load_csv(path).tech_fingerprint(),
            tech().fingerprint());
  EXPECT_EQ(cell::CellLibrary::n_characterization_runs("NOR2"), 1);
  std::remove(path.c_str());
}

TEST(NetlistCircuit, MixedTreeSimulatesUnderBatchRunner) {
  const auto desc = cell::read_netlist_file(mixed_tree_path());
  const auto lib = std::make_shared<const cell::CellLibrary>(library());
  const sim::CircuitBuilder builder(lib);

  auto run = [&](std::size_t n_threads) {
    sim::BatchConfig config;
    config.trace.mu = 150e-12;
    config.trace.sigma = 60e-12;
    config.trace.n_transitions = 60;
    config.n_runs = 4;
    config.n_threads = n_threads;
    config.base_seed = 99;
    sim::BatchRunner runner([&builder, &desc] { return builder.build(desc); },
                            "out", config);
    return runner.run();
  };

  const auto serial = run(1);
  EXPECT_EQ(serial.n_runs, 4u);
  EXPECT_GT(serial.total_events, 0);
  EXPECT_GT(serial.total_output_transitions, 0);

  // Deterministic aggregate regardless of thread count.
  const auto parallel = run(3);
  EXPECT_EQ(serial.total_events, parallel.total_events);
  EXPECT_EQ(serial.total_output_transitions,
            parallel.total_output_transitions);
  EXPECT_EQ(serial.events_per_run, parallel.events_per_run);
}

TEST(NetlistCircuit, CircuitGatesMatchPerGateGoldenTraces) {
  // Simulate the whole netlist, then re-run every gate's channel standalone
  // on the in-circuit input traces: the builder's wiring must reproduce
  // each gate's output trace exactly.
  const auto desc = cell::read_netlist_file(mixed_tree_path());
  const auto& lib = library();
  const sim::CircuitBuilder builder(lib);
  const auto circuit = builder.build(desc);

  util::Rng rng(7);
  waveform::TraceConfig config;
  config.mu = 160e-12;
  config.sigma = 70e-12;
  config.n_transitions = 50;
  const auto stimuli =
      waveform::generate_traces(config, circuit->n_inputs(), rng);
  const double t_end = 60e-9;
  const auto result = circuit->simulate(stimuli, 0.0, t_end);

  int checked = 0;
  for (const auto& inst : desc.instances) {
    const auto& spec = lib.spec(inst.cell);
    std::vector<waveform::DigitalTrace> inputs;
    for (const auto& net : inst.inputs) {
      inputs.push_back(result.trace(circuit->find_net(net)));
    }
    const auto channel = spec.make_mis_channel();
    const auto golden =
        sim::run_gate_channel(*channel, inputs, 0.0, t_end);
    const auto& in_circuit = result.trace(circuit->find_net(inst.output));
    EXPECT_EQ(golden.initial_value(), in_circuit.initial_value())
        << inst.cell << " " << inst.output;
    EXPECT_EQ(golden.transitions(), in_circuit.transitions())
        << inst.cell << " " << inst.output;
    ++checked;
  }
  EXPECT_GE(checked, 10);
}

TEST(NetlistCircuit, CharacterizeCachedRegeneratesCorruptCaches) {
  // Every corruption mode of the CSV cache -- truncation mid-file, a row
  // with the wrong column count, a fingerprint mismatch, binary garbage --
  // must silently regenerate (served from the in-memory memo, so no new
  // pipeline runs) and leave a freshly valid file behind; never throw.
  const std::string path = ::testing::TempDir() + "charlie_cells_corrupt.csv";
  const auto& lib = library();
  const long runs_before = cell::CellLibrary::n_characterization_runs("NOR2");

  auto corrupt_and_recover = [&](const std::string& label,
                                 auto&& corruption) {
    std::remove(path.c_str());
    lib.save_csv(path);
    corruption();
    // The corrupted file must not load...
    EXPECT_THROW(cell::CellLibrary::load_csv(path), ConfigError) << label;
    // ...but characterize_cached must regenerate instead of failing.
    const auto recovered =
        cell::CellLibrary::characterize_cached(path, tech());
    EXPECT_EQ(recovered.tech_fingerprint(), tech().fingerprint()) << label;
    EXPECT_EQ(recovered.spec("NOR2").params.c_out,
              lib.spec("NOR2").params.c_out)
        << label;
    // The rewritten file is valid again.
    EXPECT_EQ(cell::CellLibrary::load_csv(path).tech_fingerprint(),
              tech().fingerprint())
        << label;
  };

  corrupt_and_recover("truncated", [&] {
    const std::string text = util::read_text_file(path);
    std::ofstream out(path, std::ios::trunc);
    out << text.substr(0, text.size() / 2);
  });
  corrupt_and_recover("wrong column count", [&] {
    std::string text = util::read_text_file(path);
    const auto at = text.find("\nNOR2,");
    ASSERT_NE(at, std::string::npos);
    const auto eol = text.find('\n', at + 1);
    text.replace(at, eol - at, "\nNOR2,only_two_fields");
    std::ofstream out(path, std::ios::trunc);
    out << text;
  });
  corrupt_and_recover("binary garbage", [&] {
    std::ofstream out(path, std::ios::trunc | std::ios::binary);
    out << std::string("\x01\x02\x03 not a csv at all \xff\xfe\x00 tail", 29);
  });

  // Fingerprint mismatch: loads fine as a file but belongs to a different
  // technology, so characterize_cached must regenerate too.
  {
    std::remove(path.c_str());
    lib.save_csv(path);
    std::string text = util::read_text_file(path);
    const auto at = text.find("fingerprint,0,");
    ASSERT_NE(at, std::string::npos);
    text.insert(at + std::string("fingerprint,0,").size(), "other-tech-");
    std::ofstream out(path, std::ios::trunc);
    out << text;
    out.close();
    const auto recovered =
        cell::CellLibrary::characterize_cached(path, tech());
    EXPECT_EQ(recovered.tech_fingerprint(), tech().fingerprint());
    EXPECT_EQ(cell::CellLibrary::load_csv(path).tech_fingerprint(),
              tech().fingerprint());
  }

  // All regenerations were in-memory cache hits: the SPICE+fit pipeline
  // never re-ran.
  EXPECT_EQ(cell::CellLibrary::n_characterization_runs("NOR2"), runs_before);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace charlie
