// Cross-validation of the static timing analyzer against the event-driven
// engine it screens for: on the c432-class workload and on generated
// netlists, the STA critical delay must bound every delay the engine
// observes -- at nominal, and run-for-run at every sampled process corner
// -- while staying tight enough to be a useful screen (tolerances below
// are measured and documented in docs/sta.md).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <memory>
#include <random>
#include <vector>

#include "cell/cell_library.hpp"
#include "cell/netlist.hpp"
#include "cell/netlist_gen.hpp"
#include "sim/batch_runner.hpp"
#include "sim/circuit.hpp"
#include "sim/circuit_builder.hpp"
#include "sim/process_variation.hpp"
#include "sta/report.hpp"
#include "sta/timing_graph.hpp"
#include "waveform/digital_trace.hpp"

namespace charlie {
namespace {

std::shared_ptr<const cell::CellLibrary> reference_library() {
  static const auto library = std::make_shared<const cell::CellLibrary>(
      cell::CellLibrary::reference());
  return library;
}

const cell::NetlistDesc& c432_desc() {
  static const cell::NetlistDesc desc = cell::read_netlist_file(
      CHARLIE_SOURCE_DIR "/examples/netlists/c432.net");
  return desc;
}

// Simultaneous-vector-flip probe: settle the circuit on v0, flip every
// differing input at t_flip, and report the latest endpoint transition
// relative to t_flip. This is the stimulus family STA models exactly
// (all arrivals at 0), so it probes tightness, not just conservatism.
double observed_flip_delay(sim::Circuit& circuit,
                           const std::vector<sim::Circuit::NetId>& endpoints,
                           const std::vector<bool>& v0,
                           const std::vector<bool>& v1, double t_flip,
                           double horizon) {
  std::vector<waveform::DigitalTrace> stimuli;
  stimuli.reserve(v0.size());
  for (std::size_t i = 0; i < v0.size(); ++i) {
    std::vector<double> edges;
    if (v1[i] != v0[i]) edges.push_back(t_flip);
    stimuli.emplace_back(v0[i], std::move(edges));
  }
  const auto result = circuit.simulate(stimuli, 0.0, t_flip + horizon);
  EXPECT_TRUE(result.ok());
  double last = t_flip;
  for (const sim::Circuit::NetId id : endpoints) {
    for (const double t : result.trace(id).transitions()) {
      last = std::max(last, t);
    }
  }
  return last - t_flip;
}

std::vector<bool> random_vector(std::mt19937& rng, std::size_t n) {
  std::vector<bool> v(n);
  std::bernoulli_distribution bit(0.5);
  for (std::size_t i = 0; i < n; ++i) v[i] = bit(rng);
  return v;
}

// Run `n_trials` random simultaneous flips and return the largest observed
// endpoint delay; every single observation is asserted against `bound`.
double max_observed_flip_delay(const cell::NetlistDesc& desc,
                               std::size_t n_trials, double bound,
                               std::uint32_t seed) {
  const sim::CircuitBuilder builder(reference_library());
  const auto circuit = builder.build(desc);
  const sta::TimingGraph graph(desc, reference_library());
  std::vector<sim::Circuit::NetId> endpoints;
  for (const std::string& net : graph.endpoints()) {
    endpoints.push_back(circuit->find_net(net));
  }
  std::mt19937 rng(seed);
  const double horizon = 4.0 * bound + 2e-9;
  double worst = 0.0;
  for (std::size_t trial = 0; trial < n_trials; ++trial) {
    const auto v0 = random_vector(rng, desc.inputs.size());
    auto v1 = random_vector(rng, desc.inputs.size());
    if (v0 == v1) v1[0] = !v1[0];
    const double observed =
        observed_flip_delay(*circuit, endpoints, v0, v1, 1e-9, horizon);
    EXPECT_LE(observed, bound * (1.0 + 1e-9))
        << "trial " << trial << ": event engine beat the STA bound";
    worst = std::max(worst, observed);
  }
  return worst;
}

TEST(StaVsSim, C432NominalBoundIsConservativeAndTight) {
  const sta::TimingGraph graph(c432_desc(), reference_library());
  const sta::TimingResult sta =
      graph.analyze(graph.nominal_arcs(), 0.0);
  ASSERT_GT(sta.critical_delay, 0.0);

  const double worst =
      max_observed_flip_delay(c432_desc(), 120, sta.critical_delay, 2022);
  const double ratio = worst / sta.critical_delay;
  std::printf("[ c432 ] sta=%.4g observed_max=%.4g ratio=%.3f\n",
              sta.critical_delay, worst, ratio);
  // Tightness: random simultaneous flips must come within 25% of the
  // bound (measured ratio 0.866 under this fixed seed; the engine and the
  // stimuli are deterministic, so this does not flake -- docs/sta.md).
  EXPECT_GE(ratio, 0.75);
}

TEST(StaVsSim, GeneratedNetlistBoundIsConservative) {
  cell::NetlistGenConfig config;
  config.n_gates = 300;
  config.seed = 11;
  const cell::NetlistDesc desc = cell::generate_netlist(config);
  const sta::TimingGraph graph(desc, reference_library());
  const sta::TimingResult sta =
      graph.analyze(graph.nominal_arcs(), 0.0);
  ASSERT_GT(sta.critical_delay, 0.0);

  const double worst =
      max_observed_flip_delay(desc, 60, sta.critical_delay, 7177);
  std::printf("[ gen  ] sta=%.4g observed_max=%.4g ratio=%.3f\n",
              sta.critical_delay, worst, worst / sta.critical_delay);
  // On this workload a random flip sensitizes the critical path exactly
  // (measured ratio 1.000): the bound is conservative AND attained.
  EXPECT_GE(worst, 0.75 * sta.critical_delay);
}

TEST(StaVsSim, CornerStaBoundsEveryRunOfAVariationBatch) {
  const auto library = reference_library();
  const auto builder = std::make_shared<sim::CircuitBuilder>(library);
  const cell::NetlistDesc& desc = c432_desc();

  sim::BatchConfig config;
  config.trace.mu = 300e-12;
  config.trace.sigma = 100e-12;
  config.trace.n_transitions = 30;
  config.n_runs = 200;
  config.base_seed = 20;
  config.n_threads = 4;
  config.t_settle = 4e-9;
  config.variation.vdd_sigma = 0.05;
  config.variation.vth_sigma = 0.03;
  config.variation.drive_sigma = 0.05;

  const std::vector<std::string> outputs = desc.outputs;
  sim::BatchRunner runner(
      [builder, &desc] { return builder->build(desc); }, outputs, config);
  const sim::BatchResult result = runner.run();
  ASSERT_TRUE(result.all_ok());
  ASSERT_GT(result.stats.n_samples, 100u);

  // Run r of the batch and corner r of the analyzer see the SAME process
  // point: variation.sample(base_seed, r). STA must bound the observed
  // critical delay on 100% of the runs.
  const sta::TimingGraph graph(desc, library);
  double min_margin = 1e99;
  for (std::size_t r = 0; r < config.n_runs; ++r) {
    const double observed = result.critical_delays[r];
    if (observed < 0.0) continue;  // failed / no response sample
    const core::ProcessPoint point =
        config.variation.sample(config.base_seed, r);
    const double sta_delay =
        graph.analyze(graph.arcs_at(point), 0.0).critical_delay;
    EXPECT_LE(observed, sta_delay * (1.0 + 1e-9)) << "run " << r;
    min_margin = std::min(min_margin, sta_delay - observed);
  }
  std::printf("[ mc   ] n=%zu min_margin=%.4g batch_max=%.4g\n",
              result.stats.n_samples, min_margin, result.stats.max);
  EXPECT_GE(min_margin, 0.0);
}

TEST(StaVsSim, SstaQuantilesMatchCornerSampling) {
  const sta::TimingGraph graph(c432_desc(), reference_library());
  sim::ProcessVariation variation;
  variation.vdd_sigma = 0.05;
  variation.vth_sigma = 0.03;
  variation.drive_sigma = 0.05;

  const sta::Canonical ssta =
      graph.analyze_ssta(graph.canonical_arcs(variation));
  ASSERT_GT(ssta.sigma(), 0.0);

  // 200 deterministic corner analyses of the SAME graph: the empirical
  // distribution the canonical form linearizes.
  std::vector<double> samples;
  for (std::uint64_t c = 0; c < 200; ++c) {
    samples.push_back(
        graph.analyze(graph.arcs_at(variation.sample(20, c)), 0.0)
            .critical_delay);
  }
  std::sort(samples.begin(), samples.end());
  const auto nearest_rank = [&](double q) {
    const auto idx = static_cast<std::size_t>(
        std::ceil(q * static_cast<double>(samples.size()))) - 1;
    return samples[std::min(idx, samples.size() - 1)];
  };
  const double mc_q50 = nearest_rank(0.5);
  const double mc_q95 = nearest_rank(0.95);
  std::printf("[ ssta ] q50=%.4g mc_q50=%.4g q95=%.4g mc_q95=%.4g\n",
              ssta.quantile(0.5), mc_q50, ssta.quantile(0.95), mc_q95);
  // The first-order canonical form must track the sampled corner
  // distribution within 10% at the median and the tail (acceptance
  // tolerance; the measured error is much smaller, see docs/sta.md).
  EXPECT_NEAR(ssta.quantile(0.5), mc_q50, 0.10 * mc_q50);
  EXPECT_NEAR(ssta.quantile(0.95), mc_q95, 0.10 * mc_q95);
}

TEST(StaVsSim, SstaScreensTheMonteCarloBatch) {
  const auto library = reference_library();
  const auto builder = std::make_shared<sim::CircuitBuilder>(library);
  const cell::NetlistDesc& desc = c432_desc();

  sim::BatchConfig config;
  config.trace.mu = 300e-12;
  config.trace.sigma = 100e-12;
  config.trace.n_transitions = 30;
  config.n_runs = 200;
  config.base_seed = 20;
  config.n_threads = 4;
  config.t_settle = 4e-9;
  config.variation.vdd_sigma = 0.05;
  config.variation.vth_sigma = 0.03;
  config.variation.drive_sigma = 0.05;

  sim::BatchRunner runner(
      [builder, &desc] { return builder->build(desc); }, desc.outputs,
      config);
  const sim::BatchResult result = runner.run();
  ASSERT_TRUE(result.all_ok());
  ASSERT_GT(result.stats.n_samples, 100u);

  const sta::TimingGraph graph(desc, library);
  const sta::Canonical ssta =
      graph.analyze_ssta(graph.canonical_arcs(config.variation));

  // The SSTA quantiles must sit ABOVE the batch's observed quantiles (the
  // screen is a bound: telegraph stimuli rarely excite the full critical
  // path, so observed delays are below the structural bound)...
  double batch_q50 = 0.0;
  double batch_q95 = 0.0;
  for (const auto& [q, value] : result.stats.quantiles) {
    if (q == 0.5) batch_q50 = value;
    if (q == 0.95) batch_q95 = value;
  }
  ASSERT_GT(batch_q50, 0.0);
  std::printf("[ batch] ssta_q50=%.4g batch_q50=%.4g ssta_q95=%.4g "
              "batch_q95=%.4g max=%.4g\n",
              ssta.quantile(0.5), batch_q50, ssta.quantile(0.95), batch_q95,
              result.stats.max);
  EXPECT_GE(ssta.quantile(0.5), batch_q50);
  EXPECT_GE(ssta.quantile(0.95), batch_q95);
  // ...and the batch maximum stays under the SSTA right tail, so a design
  // passing the SSTA screen will not be failed by the Monte Carlo.
  EXPECT_LE(result.stats.max, ssta.quantile(0.9999));
}

}  // namespace
}  // namespace charlie
