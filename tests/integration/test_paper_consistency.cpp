// Cross-checks tying the implementation to the paper's published numbers:
// Table I parameters must reproduce the Fig 2/5/6 characteristic delays and
// the Section IV/V narrative.
#include <gtest/gtest.h>

#include "core/charlie_delays.hpp"
#include "core/delay_model.hpp"
#include "core/parametrize.hpp"

namespace charlie {
namespace {

using core::CharacteristicDelays;
using core::NorDelayModel;
using core::NorParams;

class PaperNumbers : public ::testing::Test {
 protected:
  const NorParams p_ = NorParams::paper_table1();
  const NorDelayModel model_{p_};
};

TEST_F(PaperNumbers, Figure2bFallingValues) {
  // Fig 2b: delta_fall(-inf) ~ 38 ps, delta_fall(0) ~ 28 ps, ~-28 % MIS.
  EXPECT_NEAR(model_.falling_sis_b_first(), 38.9e-12, 0.5e-12);
  EXPECT_NEAR(model_.falling_delay(0.0).delay, 28.0e-12, 0.5e-12);
}

TEST_F(PaperNumbers, Figure2dRisingValues) {
  // Fig 2d: rising delays in 53..56 ps.
  const double lo = 52e-12;
  const double hi = 57e-12;
  for (double d : {model_.rising_sis_a_first(), model_.rising_sis_b_first(),
                   model_.rising_delay(0.0, 0.0).delay}) {
    EXPECT_GT(d, lo);
    EXPECT_LT(d, hi);
  }
}

TEST_F(PaperNumbers, SectionIvDeltaMinDerivation) {
  // delta_min = 18 ps makes the effective ratio 20/10 = 2 (paper's words:
  // "This results in an effective ratio of 20 ps / 10 ps = 2").
  const double fall0_raw = model_.falling_delay(0.0).delay - p_.delta_min;
  const double fallm_raw = model_.falling_sis_b_first() - p_.delta_min;
  EXPECT_NEAR(fall0_raw, 10e-12, 0.1e-12);
  EXPECT_NEAR(fallm_raw, 20.9e-12, 0.1e-12);
  EXPECT_NEAR(fallm_raw / fall0_raw, 2.08, 0.02);
}

TEST_F(PaperNumbers, Figure5ShapeFallingModelCurve) {
  // The model's falling curve: V-shaped with minimum at 0, saturating at
  // the SIS values within ~|Delta| > 60 ps (Fig 5's x-range).
  const double at60 = model_.falling_delay(60e-12).delay;
  const double sis = model_.falling_sis_a_first();
  EXPECT_NEAR(at60, sis, 0.6e-12);
  const double atm60 = model_.falling_delay(-60e-12).delay;
  EXPECT_NEAR(atm60, model_.falling_sis_b_first(), 0.6e-12);
}

TEST_F(PaperNumbers, Figure6RisingCurvesByHistory) {
  // Fig 6: for V_N = GND the Delta < 0 branch is flat; for V_N = VDD it
  // drops below; all curves meet at the Delta >= 0 branch as Delta grows.
  const double flat1 = model_.rising_delay(-20e-12, 0.0).delay;
  const double flat2 = model_.rising_delay(-70e-12, 0.0).delay;
  EXPECT_NEAR(flat1, flat2, 1e-15);
  const double vdd_hist = model_.rising_delay(-20e-12, p_.vdd).delay;
  EXPECT_LT(vdd_hist, flat1);
  // Delta >> 0: history forgotten (N recharged through T1 regardless).
  EXPECT_NEAR(model_.rising_delay(150e-12, 0.0).delay,
              model_.rising_delay(150e-12, p_.vdd).delay, 0.3e-12);
}

TEST_F(PaperNumbers, SectionVParameterSensitivities) {
  // "delta_fall(0) is determined by CO, R3, R4" -- scaling R1 must leave
  // the whole falling curve untouched.
  NorParams q = p_;
  q.r1 *= 3.0;
  const NorDelayModel m2(q);
  for (double delta : {-40e-12, 0.0, 40e-12}) {
    EXPECT_NEAR(m2.falling_delay(delta).delay,
                model_.falling_delay(delta).delay, 1e-15);
  }
}

TEST(PaperFit, Table1LikeParametersRecoveredFromPaperTargets) {
  // Feed the fit the paper's own characteristic values; the result must
  // reproduce them as well as Table I does (the parametrization problem
  // the paper solves in Section V).
  const NorParams table1 = NorParams::paper_table1();
  const CharacteristicDelays targets =
      core::characteristic_delays_exact(table1);
  core::FitOptions opts;
  opts.vdd = table1.vdd;
  opts.nelder_mead_evaluations = 2500;
  const auto fit = core::fit_nor_params(targets, opts);
  EXPECT_NEAR(fit.params.delta_min, 18e-12, 1.5e-12);
  EXPECT_LT(fit.rms_error, 0.5e-12);
  // R3, R4 are pinned by eqs (8)-(9) given C_O; check the products that
  // the closed forms fix exactly.
  EXPECT_NEAR(fit.params.co * fit.params.r4, table1.co * table1.r4,
              0.05 * table1.co * table1.r4);
}

}  // namespace
}  // namespace charlie
