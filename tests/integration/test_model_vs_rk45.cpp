// Independent numerical validation: the closed-form hybrid trajectories
// against RK45 integration of the raw mode ODEs (replacing the paper's
// MATLAB cross-check of its analytic solutions).
#include <gtest/gtest.h>

#include "core/delay_model.hpp"
#include "core/trajectory.hpp"
#include "ode/rk45.hpp"

namespace charlie {
namespace {

using core::Mode;
using core::NorParams;

// Integrate one mode ODE with RK45.
ode::Vec2 rk45_mode(const NorParams& p, Mode m, const ode::Vec2& x0,
                    double t) {
  const auto sys = core::mode_ode(m, p);
  const ode::OdeRhs rhs = [&](double, std::span<const double> x,
                              std::span<double> dx) {
    const ode::Vec2 d = sys.derivative({x[0], x[1]});
    dx[0] = d.x;
    dx[1] = d.y;
  };
  const double x0_arr[] = {x0.x, x0.y};
  ode::Rk45Options opts;
  opts.rtol = 1e-11;
  opts.atol = 1e-14;
  const auto r = ode::integrate_rk45(rhs, x0_arr, 0.0, t, opts);
  return {r.x_final[0], r.x_final[1]};
}

class ModeVsRk45 : public ::testing::TestWithParam<Mode> {};

TEST_P(ModeVsRk45, ClosedFormMatchesIntegration) {
  const NorParams p = NorParams::paper_table1();
  const Mode m = GetParam();
  const auto sys = core::mode_ode(m, p);
  const ode::Vec2 x0{0.65, 0.37};  // generic interior state
  for (double t : {5e-12, 25e-12, 80e-12, 300e-12}) {
    const ode::Vec2 exact = sys.state_at(t, x0);
    const ode::Vec2 numeric = rk45_mode(p, m, x0, t);
    EXPECT_NEAR(exact.x, numeric.x, 1e-8) << core::mode_name(m) << " t=" << t;
    EXPECT_NEAR(exact.y, numeric.y, 1e-8) << core::mode_name(m) << " t=" << t;
  }
}

INSTANTIATE_TEST_SUITE_P(AllModes, ModeVsRk45,
                         ::testing::ValuesIn(core::kAllModes));

TEST(HybridVsRk45, FullMisTrajectoryFalling) {
  // Piecewise trajectory (0,0) -> (1,0) -> (1,1) evaluated both ways.
  const NorParams p = NorParams::paper_table1();
  auto traj = core::NorTrajectory::from_steady_state(p, 0.0, Mode::kS00);
  traj.set_inputs(0.0, true, false);
  traj.set_inputs(30e-12, true, true);

  // RK45 through the same mode sequence.
  ode::Vec2 x{p.vdd, p.vdd};
  x = rk45_mode(p, Mode::kS10, x, 30e-12);
  const ode::Vec2 x_mid = traj.state_at(30e-12);
  EXPECT_NEAR(x.x, x_mid.x, 1e-8);
  EXPECT_NEAR(x.y, x_mid.y, 1e-8);
  x = rk45_mode(p, Mode::kS11, x, 40e-12);
  const ode::Vec2 x_end = traj.state_at(70e-12);
  EXPECT_NEAR(x.x, x_end.x, 1e-8);
  EXPECT_NEAR(x.y, x_end.y, 1e-8);
}

TEST(HybridVsRk45, DelayFromBisectionOnRk45Matches) {
  // Compute delta_fall(20 ps) by root-finding on RK45 trajectories and
  // compare with the closed-form delay model (delta_min excluded).
  NorParams p = NorParams::paper_table1();
  p.delta_min = 0.0;
  const core::NorDelayModel model(p);
  const double delta = 20e-12;

  auto vo_at = [&](double t) {
    ode::Vec2 x{p.vdd, p.vdd};
    if (t <= delta) {
      return rk45_mode(p, Mode::kS10, x, std::max(t, 1e-18)).y;
    }
    x = rk45_mode(p, Mode::kS10, x, delta);
    return rk45_mode(p, Mode::kS11, x, t - delta).y;
  };
  // Bisection for vo = vdd/2.
  double lo = 1e-15;
  double hi = 200e-12;
  for (int i = 0; i < 60; ++i) {
    const double mid = 0.5 * (lo + hi);
    if (vo_at(mid) > p.vth()) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  const double t_rk = 0.5 * (lo + hi);
  EXPECT_NEAR(t_rk, model.falling_delay(delta).delay, 1e-14);
}

}  // namespace
}  // namespace charlie
