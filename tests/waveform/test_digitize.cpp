#include "waveform/digitize.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace charlie::waveform {
namespace {

TEST(Digitize, SimpleRamp) {
  Waveform w;
  w.append(0.0, 0.0);
  w.append(1.0, 1.0);
  const auto crossings = find_crossings(w, 0.5);
  ASSERT_EQ(crossings.size(), 1u);
  EXPECT_NEAR(crossings[0].t, 0.5, 1e-12);
  EXPECT_TRUE(crossings[0].rising);
}

TEST(Digitize, PulseBothEdges) {
  Waveform w;
  w.append(0.0, 0.0);
  w.append(1.0, 1.0);
  w.append(2.0, 1.0);
  w.append(3.0, 0.0);
  const auto trace = digitize(w, 0.5);
  EXPECT_FALSE(trace.initial_value());
  ASSERT_EQ(trace.n_transitions(), 2u);
  EXPECT_NEAR(trace.transitions()[0], 0.5, 1e-12);
  EXPECT_NEAR(trace.transitions()[1], 2.5, 1e-12);
}

TEST(Digitize, TouchWithoutCrossingIsIgnored) {
  // Rises exactly to the threshold and returns: no crossing.
  Waveform w;
  w.append(0.0, 0.0);
  w.append(1.0, 0.5);
  w.append(2.0, 0.0);
  EXPECT_TRUE(find_crossings(w, 0.5).empty());
  EXPECT_EQ(digitize(w, 0.5).n_transitions(), 0u);
}

TEST(Digitize, PlateauOnThresholdResolvedByDeparture) {
  // Sits on the threshold then rises: one crossing when it departs upward.
  Waveform w;
  w.append(0.0, 0.0);
  w.append(1.0, 0.5);
  w.append(2.0, 0.5);
  w.append(3.0, 1.0);
  const auto crossings = find_crossings(w, 0.5);
  ASSERT_EQ(crossings.size(), 1u);
  EXPECT_TRUE(crossings[0].rising);
}

TEST(Digitize, RuntPulseBelowThresholdInvisible) {
  Waveform w;
  w.append(0.0, 0.0);
  w.append(1.0, 0.4);
  w.append(2.0, 0.0);
  EXPECT_EQ(digitize(w, 0.5).n_transitions(), 0u);
}

TEST(Digitize, InitialValueAboveThreshold) {
  Waveform w;
  w.append(0.0, 1.0);
  w.append(1.0, 0.0);
  const auto trace = digitize(w, 0.5);
  EXPECT_TRUE(trace.initial_value());
  ASSERT_EQ(trace.n_transitions(), 1u);
  EXPECT_FALSE(trace.is_rising(0));
}

TEST(Digitize, SineWaveCrossingCount) {
  const Waveform w = Waveform::from_function(
      [](double t) { return std::sin(t); }, 0.0, 6.0 * M_PI, 6001);
  // sin crosses 0.5 twice per period over 3 periods.
  EXPECT_EQ(find_crossings(w, 0.5).size(), 6u);
}

TEST(Digitize, CrossingTimesInterpolateInsideSegments) {
  Waveform w;
  w.append(0.0, 0.2);
  w.append(10.0, 0.7);  // crosses 0.5 at t = 6
  const auto crossings = find_crossings(w, 0.5);
  ASSERT_EQ(crossings.size(), 1u);
  EXPECT_NEAR(crossings[0].t, 6.0, 1e-12);
}

TEST(Digitize, AlternatingDirections) {
  const Waveform w = Waveform::from_function(
      [](double t) { return std::sin(t); }, 0.0, 4.0 * M_PI, 4001);
  const auto crossings = find_crossings(w, 0.0);
  for (std::size_t i = 1; i < crossings.size(); ++i) {
    EXPECT_NE(crossings[i].rising, crossings[i - 1].rising);
  }
}

}  // namespace
}  // namespace charlie::waveform
