#include "waveform/digitize.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace charlie::waveform {
namespace {

TEST(Digitize, SimpleRamp) {
  Waveform w;
  w.append(0.0, 0.0);
  w.append(1.0, 1.0);
  const auto crossings = find_crossings(w, 0.5);
  ASSERT_EQ(crossings.size(), 1u);
  EXPECT_NEAR(crossings[0].t, 0.5, 1e-12);
  EXPECT_TRUE(crossings[0].rising);
}

TEST(Digitize, PulseBothEdges) {
  Waveform w;
  w.append(0.0, 0.0);
  w.append(1.0, 1.0);
  w.append(2.0, 1.0);
  w.append(3.0, 0.0);
  const auto trace = digitize(w, 0.5);
  EXPECT_FALSE(trace.initial_value());
  ASSERT_EQ(trace.n_transitions(), 2u);
  EXPECT_NEAR(trace.transitions()[0], 0.5, 1e-12);
  EXPECT_NEAR(trace.transitions()[1], 2.5, 1e-12);
}

TEST(Digitize, TouchWithoutCrossingIsIgnored) {
  // Rises exactly to the threshold and returns: no crossing.
  Waveform w;
  w.append(0.0, 0.0);
  w.append(1.0, 0.5);
  w.append(2.0, 0.0);
  EXPECT_TRUE(find_crossings(w, 0.5).empty());
  EXPECT_EQ(digitize(w, 0.5).n_transitions(), 0u);
}

TEST(Digitize, PlateauOnThresholdResolvedByDeparture) {
  // Sits on the threshold then rises: one crossing when it departs upward.
  Waveform w;
  w.append(0.0, 0.0);
  w.append(1.0, 0.5);
  w.append(2.0, 0.5);
  w.append(3.0, 1.0);
  const auto crossings = find_crossings(w, 0.5);
  ASSERT_EQ(crossings.size(), 1u);
  EXPECT_TRUE(crossings[0].rising);
}

TEST(Digitize, RuntPulseBelowThresholdInvisible) {
  Waveform w;
  w.append(0.0, 0.0);
  w.append(1.0, 0.4);
  w.append(2.0, 0.0);
  EXPECT_EQ(digitize(w, 0.5).n_transitions(), 0u);
}

TEST(Digitize, InitialValueAboveThreshold) {
  Waveform w;
  w.append(0.0, 1.0);
  w.append(1.0, 0.0);
  const auto trace = digitize(w, 0.5);
  EXPECT_TRUE(trace.initial_value());
  ASSERT_EQ(trace.n_transitions(), 1u);
  EXPECT_FALSE(trace.is_rising(0));
}

TEST(Digitize, SineWaveCrossingCount) {
  const Waveform w = Waveform::from_function(
      [](double t) { return std::sin(t); }, 0.0, 6.0 * M_PI, 6001);
  // sin crosses 0.5 twice per period over 3 periods.
  EXPECT_EQ(find_crossings(w, 0.5).size(), 6u);
}

TEST(Digitize, CrossingTimesInterpolateInsideSegments) {
  Waveform w;
  w.append(0.0, 0.2);
  w.append(10.0, 0.7);  // crosses 0.5 at t = 6
  const auto crossings = find_crossings(w, 0.5);
  ASSERT_EQ(crossings.size(), 1u);
  EXPECT_NEAR(crossings[0].t, 6.0, 1e-12);
}

TEST(Digitize, AlternatingDirections) {
  const Waveform w = Waveform::from_function(
      [](double t) { return std::sin(t); }, 0.0, 4.0 * M_PI, 4001);
  const auto crossings = find_crossings(w, 0.0);
  for (std::size_t i = 1; i < crossings.size(); ++i) {
    EXPECT_NE(crossings[i].rising, crossings[i - 1].rising);
  }
}

TEST(Digitize, PlateauDepartureReportsFlatSegmentStart) {
  // Regression for the flat-segment crossing time: a run of samples sitting
  // exactly on the threshold that then departs must report the crossing at
  // the *start* of the departing segment (where the held level last was),
  // never at a later sample.
  Waveform w;
  w.append(0.0, 1.0);
  w.append(1.0, 0.5);
  w.append(2.0, 0.5);  // flat run exactly on the threshold
  w.append(3.0, 0.5);
  w.append(4.0, 0.0);  // departs downward
  const auto crossings = find_crossings(w, 0.5);
  ASSERT_EQ(crossings.size(), 1u);
  EXPECT_FALSE(crossings[0].rising);
  EXPECT_DOUBLE_EQ(crossings[0].t, 3.0);
  // And the crossing stays inside its segment (the monotonicity clamp).
  EXPECT_GE(crossings[0].t, 2.0);
  EXPECT_LE(crossings[0].t, 4.0);
}

TEST(Digitize, SamplesExactlyOnThresholdHold) {
  // The hold rule: a sample landing exactly on the threshold keeps the
  // previous digital state in both directions.
  Waveform rising;
  rising.append(0.0, 0.0);
  rising.append(1.0, 0.5);  // exactly on: still low
  rising.append(2.0, 1.0);
  const auto up = find_crossings(rising, 0.5);
  ASSERT_EQ(up.size(), 1u);
  EXPECT_TRUE(up[0].rising);
  EXPECT_DOUBLE_EQ(up[0].t, 1.0);  // departs at the held sample

  Waveform falling;
  falling.append(0.0, 1.0);
  falling.append(1.0, 0.5);  // exactly on: still high
  falling.append(2.0, 0.0);
  const auto down = find_crossings(falling, 0.5);
  ASSERT_EQ(down.size(), 1u);
  EXPECT_FALSE(down[0].rising);
  EXPECT_DOUBLE_EQ(down[0].t, 1.0);

  // Dip to exactly the threshold and back: held, so no crossing at all.
  Waveform dip;
  dip.append(0.0, 1.0);
  dip.append(1.0, 0.5);
  dip.append(2.0, 1.0);
  EXPECT_TRUE(find_crossings(dip, 0.5).empty());
  const auto trace = digitize(dip, 0.5);
  EXPECT_TRUE(trace.initial_value());
  EXPECT_EQ(trace.n_transitions(), 0u);
}

TEST(Digitize, DuplicateCrossingTimestampsAreNudgedApart) {
  // Two crossings interpolating to the same timestamp: digitize must keep
  // the trace strictly increasing by nudging with nextafter.
  Waveform w;
  w.append(0.0, 0.0);
  w.append(1.0, 0.5);   // reaches the threshold (held low)...
  w.append(2.0, 1.0);   // ...crossing up at t = 1
  w.append(3.0, 0.5);   // down-crossing interpolates to t = 3...
  w.append(4.0, 0.4);   // ...resolved on departure at t = 3 again? No:
  w.append(5.0, 1.0);   // and back up, crossing at some t in (4, 5).
  const auto trace = digitize(w, 0.5);
  ASSERT_GE(trace.n_transitions(), 2u);
  const auto& ts = trace.transitions();
  for (std::size_t i = 1; i < ts.size(); ++i) {
    EXPECT_LT(ts[i - 1], ts[i]) << "transitions must strictly increase";
  }
}

TEST(Digitize, NudgePathKeepsStrictMonotonicity) {
  // Force the degenerate case deterministically: a spike whose peak sits
  // one ulp above the threshold. The up-crossing interpolation factor
  // (0.5 - (-3.5)) / (peak - (-3.5)) rounds to exactly 1.0 (the 1-ulp
  // excess is far below half an ulp of 4.0), so the rising crossing lands
  // exactly on the peak timestamp t = 2.0; the falling crossing's factor
  // (~2.8e-17) vanishes against ulp(2.0), landing on 2.0 as well. digitize
  // must nudge the second transition by exactly one representable step.
  const double peak = std::nextafter(0.5, 1.0);
  Waveform w;
  w.append(1.0, -3.5);
  w.append(2.0, peak);
  w.append(3.0, -3.5);
  const auto crossings = find_crossings(w, 0.5);
  ASSERT_EQ(crossings.size(), 2u);
  EXPECT_DOUBLE_EQ(crossings[0].t, 2.0);
  EXPECT_DOUBLE_EQ(crossings[1].t, 2.0);  // collides before the nudge
  const auto trace = digitize(w, 0.5);
  ASSERT_EQ(trace.n_transitions(), 2u);
  EXPECT_EQ(trace.transitions()[0], 2.0);
  EXPECT_EQ(trace.transitions()[1], std::nextafter(2.0, 1e300));
}

}  // namespace
}  // namespace charlie::waveform
