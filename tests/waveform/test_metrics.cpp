#include "waveform/metrics.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace charlie::waveform {
namespace {

TEST(DeviationArea, IdenticalTracesZero) {
  const DigitalTrace a(false, {1.0, 2.0, 3.0});
  EXPECT_DOUBLE_EQ(deviation_area(a, a, 0.0, 5.0), 0.0);
}

TEST(DeviationArea, PureTimeShift) {
  // Same pulse shifted by 0.1: the traces disagree for 0.1 at each edge.
  const DigitalTrace a(false, {1.0, 2.0});
  const DigitalTrace b(false, {1.1, 2.1});
  EXPECT_NEAR(deviation_area(a, b, 0.0, 5.0), 0.2, 1e-12);
}

TEST(DeviationArea, MissingPulse) {
  const DigitalTrace a(false, {1.0, 2.5});
  const DigitalTrace b(false, {});
  EXPECT_NEAR(deviation_area(a, b, 0.0, 5.0), 1.5, 1e-12);
}

TEST(DeviationArea, Symmetry) {
  const DigitalTrace a(false, {1.0, 2.0, 4.0});
  const DigitalTrace b(false, {1.2, 2.7});
  EXPECT_DOUBLE_EQ(deviation_area(a, b, 0.0, 6.0),
                   deviation_area(b, a, 0.0, 6.0));
}

TEST(DeviationArea, AdditiveOverDisjointWindows) {
  const DigitalTrace a(false, {1.0, 2.0, 4.0, 5.5});
  const DigitalTrace b(false, {1.3, 2.0, 4.2, 5.5});
  const double whole = deviation_area(a, b, 0.0, 6.0);
  const double split = deviation_area(a, b, 0.0, 3.0) +
                       deviation_area(a, b, 3.0, 6.0);
  EXPECT_NEAR(whole, split, 1e-12);
}

TEST(DeviationArea, DifferentInitialValues) {
  const DigitalTrace a(true, {});
  const DigitalTrace b(false, {});
  EXPECT_DOUBLE_EQ(deviation_area(a, b, 0.0, 2.0), 2.0);
}

TEST(DeviationArea, WindowClipsContributions) {
  const DigitalTrace a(false, {1.0});
  const DigitalTrace b(false, {});
  // Disagreement starts at 1.0; window [0, 1.5] sees only 0.5 of it.
  EXPECT_NEAR(deviation_area(a, b, 0.0, 1.5), 0.5, 1e-12);
  // Window starting inside the disagreement.
  EXPECT_NEAR(deviation_area(a, b, 2.0, 3.0), 1.0, 1e-12);
}

TEST(DeviationArea, InvertedWindowThrows) {
  const DigitalTrace a(false, {});
  EXPECT_THROW(deviation_area(a, a, 1.0, 0.0), AssertionError);
}

TEST(PairEdges, PerfectMatch) {
  const DigitalTrace ref(false, {1.0, 2.0, 3.0});
  const auto stats = pair_edges(ref, ref, 0.5);
  EXPECT_EQ(stats.offsets.size(), 3u);
  EXPECT_EQ(stats.unmatched_reference, 0u);
  EXPECT_EQ(stats.unmatched_model, 0u);
  EXPECT_DOUBLE_EQ(stats.mean_abs_offset, 0.0);
}

TEST(PairEdges, ShiftedModel) {
  const DigitalTrace ref(false, {1.0, 2.0});
  const DigitalTrace model(false, {1.05, 2.1});
  const auto stats = pair_edges(ref, model, 0.5);
  ASSERT_EQ(stats.offsets.size(), 2u);
  EXPECT_NEAR(stats.offsets[0], 0.05, 1e-12);
  EXPECT_NEAR(stats.offsets[1], 0.1, 1e-12);
  EXPECT_NEAR(stats.max_abs_offset, 0.1, 1e-12);
  EXPECT_NEAR(stats.mean_abs_offset, 0.075, 1e-12);
}

TEST(PairEdges, DirectionMatters) {
  // Model's only edge is falling; reference's is rising: no pairing.
  const DigitalTrace ref(false, {1.0});
  const DigitalTrace model(true, {1.0});
  const auto stats = pair_edges(ref, model, 0.5);
  EXPECT_EQ(stats.offsets.size(), 0u);
  EXPECT_EQ(stats.unmatched_reference, 1u);
  EXPECT_EQ(stats.unmatched_model, 1u);
}

TEST(PairEdges, WindowLimitsPairing) {
  const DigitalTrace ref(false, {1.0});
  const DigitalTrace model(false, {3.0});
  const auto near_stats = pair_edges(ref, model, 5.0);
  EXPECT_EQ(near_stats.offsets.size(), 1u);
  const auto far_stats = pair_edges(ref, model, 0.5);
  EXPECT_EQ(far_stats.offsets.size(), 0u);
}

}  // namespace
}  // namespace charlie::waveform
