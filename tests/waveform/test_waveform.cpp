#include "waveform/waveform.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/error.hpp"

namespace charlie::waveform {
namespace {

TEST(Waveform, InterpolatesLinearly) {
  Waveform w;
  w.append(0.0, 0.0);
  w.append(1.0, 2.0);
  EXPECT_DOUBLE_EQ(w.value_at(0.5), 1.0);
  EXPECT_DOUBLE_EQ(w.value_at(0.25), 0.5);
}

TEST(Waveform, ClampsOutsideSpan) {
  Waveform w;
  w.append(1.0, 5.0);
  w.append(2.0, 7.0);
  EXPECT_DOUBLE_EQ(w.value_at(0.0), 5.0);
  EXPECT_DOUBLE_EQ(w.value_at(3.0), 7.0);
}

TEST(Waveform, ExactSamplePoints) {
  Waveform w;
  w.append(0.0, 1.0);
  w.append(1.0, 2.0);
  w.append(2.0, -1.0);
  EXPECT_DOUBLE_EQ(w.value_at(1.0), 2.0);
  EXPECT_DOUBLE_EQ(w.value_at(2.0), -1.0);
}

TEST(Waveform, AppendMustAdvanceTime) {
  Waveform w;
  w.append(1.0, 0.0);
  EXPECT_THROW(w.append(1.0, 1.0), AssertionError);
  EXPECT_THROW(w.append(0.5, 1.0), AssertionError);
}

TEST(Waveform, ConstructorValidatesOrdering) {
  EXPECT_THROW(Waveform({{1.0, 0.0}, {0.5, 1.0}}), AssertionError);
  EXPECT_NO_THROW(Waveform({{0.0, 0.0}, {1.0, 1.0}}));
}

TEST(Waveform, FromFunctionSamplesEvenly) {
  const Waveform w = Waveform::from_function(
      [](double t) { return std::sin(t); }, 0.0, M_PI, 101);
  EXPECT_EQ(w.size(), 101u);
  EXPECT_NEAR(w.value_at(M_PI / 2.0), 1.0, 1e-3);
  EXPECT_NEAR(w.value_at(M_PI), 0.0, 1e-12);
}

TEST(Waveform, MinMaxAndSpan) {
  Waveform w;
  w.append(0.0, 3.0);
  w.append(1.0, -2.0);
  w.append(2.0, 1.0);
  EXPECT_DOUBLE_EQ(w.v_min(), -2.0);
  EXPECT_DOUBLE_EQ(w.v_max(), 3.0);
  EXPECT_DOUBLE_EQ(w.t_front(), 0.0);
  EXPECT_DOUBLE_EQ(w.t_back(), 2.0);
}

TEST(Waveform, EmptyQueriesThrow) {
  const Waveform w;
  EXPECT_TRUE(w.empty());
  EXPECT_THROW(w.value_at(0.0), AssertionError);
  EXPECT_THROW(w.t_front(), AssertionError);
  EXPECT_THROW(w.v_min(), AssertionError);
}

}  // namespace
}  // namespace charlie::waveform
