#include "waveform/edges.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"
#include "waveform/digitize.hpp"

namespace charlie::waveform {
namespace {

EdgeParams params_08v() {
  EdgeParams p;
  p.v_low = 0.0;
  p.v_high = 0.8;
  p.rise_time = 20e-12;
  return p;
}

TEST(Edges, SingleRisingEdgeCrossesThresholdAtTransitionTime) {
  const EdgeParams p = params_08v();
  const DigitalTrace trace(false, {100e-12});
  const Waveform w = slew_limited_waveform(trace, p, 0.0, 300e-12);
  // Threshold crossing exactly at the nominal transition time.
  const auto crossings = find_crossings(w, p.v_threshold());
  ASSERT_EQ(crossings.size(), 1u);
  EXPECT_NEAR(crossings[0].t, 100e-12, 1e-15);
  EXPECT_TRUE(crossings[0].rising);
  // Full swing completed half a rise time later.
  EXPECT_NEAR(w.value_at(100e-12 + 10.1e-12), p.v_high, 1e-9);
  // Before the edge: at the low rail.
  EXPECT_NEAR(w.value_at(80e-12), p.v_low, 1e-12);
}

TEST(Edges, WidePulseRoundTripsThroughDigitize) {
  const EdgeParams p = params_08v();
  const DigitalTrace trace(false, {100e-12, 300e-12, 500e-12});
  const Waveform w = slew_limited_waveform(trace, p, 0.0, 700e-12);
  const DigitalTrace back = digitize(w, p.v_threshold());
  ASSERT_EQ(back.n_transitions(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_NEAR(back.transitions()[i], trace.transitions()[i], 1e-15);
    EXPECT_EQ(back.is_rising(i), trace.is_rising(i));
  }
}

TEST(Edges, InitialHighSignal) {
  const EdgeParams p = params_08v();
  const DigitalTrace trace(true, {100e-12});
  const Waveform w = slew_limited_waveform(trace, p, 0.0, 200e-12);
  EXPECT_NEAR(w.value_at(0.0), p.v_high, 1e-12);
  EXPECT_NEAR(w.value_at(150e-12), p.v_low, 1e-9);
}

TEST(Edges, RuntPulseNeverReachesRail) {
  const EdgeParams p = params_08v();  // 20 ps full swing
  // 5 ps pulse: the triangle apex stays below the high rail.
  const DigitalTrace trace(false, {100e-12, 105e-12});
  const Waveform w = slew_limited_waveform(trace, p, 0.0, 300e-12);
  EXPECT_LT(w.v_max(), p.v_high - 1e-3);
  // But it does poke above the threshold (departure was before t=100ps).
  EXPECT_GT(w.v_max(), p.v_threshold());
}

TEST(Edges, SubThresholdRuntIsInvisibleAfterDigitize) {
  EdgeParams p = params_08v();
  p.rise_time = 40e-12;
  // 2 ps nominal pulse on a 40 ps edge: apex barely above the departure
  // level -- digitization sees nothing... apex is at Vth + slew*(width/2).
  // With width=2ps, apex = vth + 0.02*0.8 = 0.416 > vth. To get a truly
  // invisible pulse the edges must overlap before reaching vth, which
  // happens when the *previous* edge is still below threshold: construct
  // via three rapid transitions.
  const DigitalTrace trace(false, {100e-12, 101e-12});
  const Waveform w = slew_limited_waveform(trace, p, 0.0, 300e-12);
  const auto out = digitize(w, p.v_threshold());
  // The pulse survives digitization only as a +-0.5ps blip or not at all;
  // either way the waveform must stay consistent (alternating crossings).
  for (std::size_t i = 1; i < out.n_transitions(); ++i) {
    EXPECT_NE(out.is_rising(i), out.is_rising(i - 1));
  }
  EXPECT_LE(out.n_transitions(), 2u);
}

TEST(Edges, OverlappingEdgesProduceTriangle) {
  const EdgeParams p = params_08v();
  // Pulse width 10 ps < rise time 20 ps: rail never reached; check the
  // apex value: departure at 90 ps from 0, falling line through
  // (110ps, 0.4): intersection at apex.
  const DigitalTrace trace(false, {100e-12, 110e-12});
  const Waveform w = slew_limited_waveform(trace, p, 0.0, 300e-12);
  // apex = vth + slew * (width/2) = 0.4 + 0.04*5 = 0.6
  EXPECT_NEAR(w.v_max(), 0.6, 1e-9);
}

TEST(Edges, MonotoneSampleTimes) {
  const EdgeParams p = params_08v();
  const DigitalTrace trace(false,
                           {50e-12, 55e-12, 60e-12, 100e-12, 140e-12});
  const Waveform w = slew_limited_waveform(trace, p, 0.0, 200e-12);
  const auto& s = w.samples();
  for (std::size_t i = 1; i < s.size(); ++i) {
    EXPECT_GT(s[i].t, s[i - 1].t);
  }
  EXPECT_DOUBLE_EQ(w.t_front(), 0.0);
  EXPECT_DOUBLE_EQ(w.t_back(), 200e-12);
}

TEST(Edges, ParameterValidation) {
  EdgeParams p = params_08v();
  const DigitalTrace trace(false, {});
  EXPECT_THROW(slew_limited_waveform(trace, p, 1.0, 0.5), AssertionError);
  p.rise_time = 0.0;
  EXPECT_THROW(slew_limited_waveform(trace, p, 0.0, 1.0), AssertionError);
}

TEST(Edges, SlewRateAndThresholdHelpers) {
  const EdgeParams p = params_08v();
  EXPECT_DOUBLE_EQ(p.slew_rate(), 0.8 / 20e-12);
  EXPECT_DOUBLE_EQ(p.v_threshold(), 0.4);
}

}  // namespace
}  // namespace charlie::waveform
