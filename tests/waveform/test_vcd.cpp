// VCD export/parse lock: write_vcd output must round-trip through
// parse_vcd with edges preserved to the timescale quantum, stay free of
// nondeterministic header fields, and reject structurally broken input.
#include "waveform/vcd.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <string>
#include <vector>

#include "util/error.hpp"

namespace charlie::waveform {
namespace {

std::string dump(const std::vector<VcdDigitalSignal>& digital,
                 const std::vector<VcdAnalogSignal>& analog = {},
                 const VcdOptions& options = {}) {
  std::ostringstream os;
  write_vcd(os, digital, analog, options);
  return os.str();
}

TEST(Vcd, HeaderShape) {
  DigitalTrace a(false, {100e-12, 250e-12});
  DigitalTrace b(true, {180e-12});
  const std::string text = dump({{"net_a", &a}, {"net_b", &b}});
  EXPECT_NE(text.find("$timescale 1 fs $end"), std::string::npos);
  EXPECT_NE(text.find("$scope module charlie $end"), std::string::npos);
  EXPECT_NE(text.find("$var wire 1 ! net_a $end"), std::string::npos);
  EXPECT_NE(text.find("$var wire 1 \" net_b $end"), std::string::npos);
  EXPECT_NE(text.find("$enddefinitions $end"), std::string::npos);
  // Initial values dumped at time zero.
  EXPECT_NE(text.find("$dumpvars\n0!\n1\"\n$end"), std::string::npos);
  // Deliberately no $date: output must be bit-identical across runs.
  EXPECT_EQ(text.find("$date"), std::string::npos);
  EXPECT_EQ(text, dump({{"net_a", &a}, {"net_b", &b}}));
}

TEST(Vcd, RoundTripPreservesEdges) {
  DigitalTrace a(false, {100e-12, 250.5e-12, 600e-12});
  DigitalTrace b(true, {90e-12, 91e-12});
  DigitalTrace quiet(true, {});
  std::istringstream is(
      dump({{"a", &a}, {"b", &b}, {"quiet", &quiet}}));
  const VcdData parsed = parse_vcd(is);
  EXPECT_DOUBLE_EQ(parsed.timescale, 1e-15);
  ASSERT_EQ(parsed.digital.size(), 3u);
  for (const auto* pair :
       {&*parsed.digital.find("a"), &*parsed.digital.find("b"),
        &*parsed.digital.find("quiet")}) {
    const DigitalTrace& source =
        pair->first == "a" ? a : (pair->first == "b" ? b : quiet);
    const DigitalTrace& round = pair->second;
    EXPECT_EQ(round.initial_value(), source.initial_value()) << pair->first;
    ASSERT_EQ(round.n_transitions(), source.n_transitions()) << pair->first;
    for (std::size_t i = 0; i < source.n_transitions(); ++i) {
      // Quantized to the nearest 1 fs tick.
      EXPECT_NEAR(round.transitions()[i], source.transitions()[i], 0.5e-15)
          << pair->first << " edge " << i;
    }
    EXPECT_EQ(round.final_value(), source.final_value()) << pair->first;
  }
}

TEST(Vcd, CoarseTimescaleQuantizes) {
  DigitalTrace a(false, {100e-12, 200e-12});
  VcdOptions options;
  options.timescale = 1e-12;
  const std::string text = dump({{"a", &a}}, {}, options);
  EXPECT_NE(text.find("$timescale 1 ps $end"), std::string::npos);
  EXPECT_NE(text.find("#100\n"), std::string::npos);
  EXPECT_NE(text.find("#200\n"), std::string::npos);
  std::istringstream is(text);
  const VcdData parsed = parse_vcd(is);
  EXPECT_DOUBLE_EQ(parsed.timescale, 1e-12);
  EXPECT_DOUBLE_EQ(parsed.digital.at("a").transitions()[0], 100e-12);
}

TEST(Vcd, SubTickPulseCancelsOnParse) {
  // Two edges 0.4 fs apart land on one 1 fs tick; the parser cancels the
  // pair (DigitalTrace requires strictly increasing transition times) --
  // exactly what an ideal 1 fs sampler would see.
  DigitalTrace a(false, {100e-15, 100.4e-15, 500e-15});
  std::istringstream is(dump({{"a", &a}}));
  const VcdData parsed = parse_vcd(is);
  const DigitalTrace& round = parsed.digital.at("a");
  EXPECT_EQ(round.initial_value(), false);
  ASSERT_EQ(round.n_transitions(), 1u);
  EXPECT_NEAR(round.transitions()[0], 500e-15, 0.5e-15);
  EXPECT_EQ(round.final_value(), a.final_value());
}

TEST(Vcd, AnalogSignalsAreWrittenAndSkippedByParser) {
  DigitalTrace a(false, {100e-12});
  VcdAnalogSignal analog;
  analog.name = "v_out";
  analog.samples = {{0.0, 0.05}, {50e-12, 0.61}, {100e-12, 1.19}};
  const std::string text = dump({{"a", &a}}, {analog});
  EXPECT_NE(text.find("$var real 64 \" v_out $end"), std::string::npos);
  EXPECT_NE(text.find("r0.050000000000000003 \""), std::string::npos);
  std::istringstream is(text);
  const VcdData parsed = parse_vcd(is);
  // Digital content survives; the real var is consumed but not returned.
  EXPECT_EQ(parsed.digital.size(), 1u);
  EXPECT_EQ(parsed.digital.count("v_out"), 0u);
  EXPECT_EQ(parsed.digital.at("a").n_transitions(), 1u);
}

TEST(Vcd, ParserAcceptsCompactTimescaleToken) {
  std::istringstream is(
      "$timescale 10ps $end\n"
      "$var wire 1 ! a $end\n"
      "$enddefinitions $end\n"
      "#0\n0!\n#7\n1!\n");
  const VcdData parsed = parse_vcd(is);
  EXPECT_DOUBLE_EQ(parsed.timescale, 1e-11);
  EXPECT_DOUBLE_EQ(parsed.digital.at("a").transitions()[0], 7e-11);
}

TEST(Vcd, ParserRejectsBrokenInput) {
  // Missing $timescale.
  {
    std::istringstream is("$enddefinitions $end\n");
    EXPECT_THROW(parse_vcd(is), ConfigError);
  }
  // Missing $enddefinitions.
  {
    std::istringstream is("$timescale 1 fs $end\n");
    EXPECT_THROW(parse_vcd(is), ConfigError);
  }
  // Value change for an id that was never declared.
  {
    std::istringstream is(
        "$timescale 1 fs $end\n$enddefinitions $end\n#0\n1?\n");
    EXPECT_THROW(parse_vcd(is), ConfigError);
  }
  // Multi-bit wires are outside the supported subset.
  {
    std::istringstream is(
        "$timescale 1 fs $end\n$var wire 8 ! bus $end\n"
        "$enddefinitions $end\n");
    EXPECT_THROW(parse_vcd(is), ConfigError);
  }
  // Vector value changes likewise.
  {
    std::istringstream is(
        "$timescale 1 fs $end\n$var wire 1 ! a $end\n"
        "$enddefinitions $end\n#0\nb101 !\n");
    EXPECT_THROW(parse_vcd(is), ConfigError);
  }
}

TEST(Vcd, ManySignalsGetDistinctIdCodes) {
  // Cross the base-94 rollover so two-character id codes appear.
  std::vector<DigitalTrace> traces(100, DigitalTrace(false, {}));
  std::vector<VcdDigitalSignal> digital;
  for (std::size_t i = 0; i < traces.size(); ++i) {
    digital.push_back({"n" + std::to_string(i), &traces[i]});
  }
  std::istringstream is(dump(digital));
  const VcdData parsed = parse_vcd(is);
  EXPECT_EQ(parsed.digital.size(), digital.size());
}

}  // namespace
}  // namespace charlie::waveform
