#include "waveform/digital_trace.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace charlie::waveform {
namespace {

TEST(DigitalTrace, ValueFollowsTransitions) {
  const DigitalTrace t(false, {1.0, 2.0, 3.0});
  EXPECT_FALSE(t.value_at(0.5));
  EXPECT_TRUE(t.value_at(1.0));  // effective at its own timestamp
  EXPECT_TRUE(t.value_at(1.5));
  EXPECT_FALSE(t.value_at(2.5));
  EXPECT_TRUE(t.value_at(10.0));
  EXPECT_TRUE(t.final_value());
}

TEST(DigitalTrace, InitialHighTrace) {
  const DigitalTrace t(true, {5.0});
  EXPECT_TRUE(t.value_at(0.0));
  EXPECT_FALSE(t.value_at(6.0));
  EXPECT_FALSE(t.final_value());
}

TEST(DigitalTrace, IsRisingAlternates) {
  const DigitalTrace t(false, {1.0, 2.0, 3.0});
  EXPECT_TRUE(t.is_rising(0));
  EXPECT_FALSE(t.is_rising(1));
  EXPECT_TRUE(t.is_rising(2));
  const DigitalTrace u(true, {1.0, 2.0});
  EXPECT_FALSE(u.is_rising(0));
  EXPECT_TRUE(u.is_rising(1));
}

TEST(DigitalTrace, OrderingEnforced) {
  EXPECT_THROW(DigitalTrace(false, {2.0, 1.0}), AssertionError);
  DigitalTrace t(false, {1.0});
  EXPECT_THROW(t.append_transition(0.5), AssertionError);
  EXPECT_THROW(t.append_transition(1.0), AssertionError);
}

TEST(DigitalTrace, WithoutShortPulsesDropsPairs) {
  // Pulse 1.0..1.05 is short; 3.0..5.0 is wide.
  const DigitalTrace t(false, {1.0, 1.05, 3.0, 5.0});
  const DigitalTrace f = t.without_short_pulses(0.2);
  ASSERT_EQ(f.n_transitions(), 2u);
  EXPECT_DOUBLE_EQ(f.transitions()[0], 3.0);
  EXPECT_DOUBLE_EQ(f.transitions()[1], 5.0);
}

TEST(DigitalTrace, ShortPulseCancellationCascades) {
  // Removing the middle pair merges neighbours into a new short pulse.
  const DigitalTrace t(false, {1.0, 1.5, 1.6, 2.0});
  // gaps: 0.5, 0.1, 0.4. Dropping (1.5,1.6) leaves (1.0, 2.0): gap 1.0 ok.
  const DigitalTrace f = t.without_short_pulses(0.3);
  ASSERT_EQ(f.n_transitions(), 2u);
  EXPECT_DOUBLE_EQ(f.transitions()[0], 1.0);
  EXPECT_DOUBLE_EQ(f.transitions()[1], 2.0);
  // With a wider filter the merged pulse dies too.
  const DigitalTrace g = t.without_short_pulses(1.5);
  EXPECT_EQ(g.n_transitions(), 0u);
}

TEST(DigitalTrace, WindowRestriction) {
  const DigitalTrace t(false, {1.0, 2.0, 3.0, 4.0});
  const DigitalTrace w = t.window(1.5, 3.5);
  EXPECT_TRUE(w.initial_value());  // value at 1.5
  ASSERT_EQ(w.n_transitions(), 2u);
  EXPECT_DOUBLE_EQ(w.transitions()[0], 2.0);
  EXPECT_DOUBLE_EQ(w.transitions()[1], 3.0);
}

TEST(DigitalTrace, EmptyTraceBasics) {
  const DigitalTrace t;
  EXPECT_TRUE(t.empty());
  EXPECT_FALSE(t.value_at(100.0));
  EXPECT_FALSE(t.final_value());
  EXPECT_EQ(t.without_short_pulses(1.0).n_transitions(), 0u);
}

}  // namespace
}  // namespace charlie::waveform
