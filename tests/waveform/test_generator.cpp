#include "waveform/generator.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "util/math.hpp"

namespace charlie::waveform {
namespace {

TEST(Generator, LocalModeProducesIndependentTraces) {
  TraceConfig cfg;
  cfg.mu = 100e-12;
  cfg.sigma = 50e-12;
  cfg.n_transitions = 200;
  util::Rng rng(1);
  const auto traces = generate_traces(cfg, 2, rng);
  ASSERT_EQ(traces.size(), 2u);
  EXPECT_EQ(traces[0].n_transitions(), 200u);
  EXPECT_EQ(traces[1].n_transitions(), 200u);
  // Independent streams: transition times must differ.
  EXPECT_NE(traces[0].transitions()[10], traces[1].transitions()[10]);
}

TEST(Generator, GapStatisticsMatchConfig) {
  TraceConfig cfg;
  cfg.mu = 100e-12;
  cfg.sigma = 20e-12;
  cfg.n_transitions = 5000;
  util::Rng rng(7);
  const auto traces = generate_traces(cfg, 1, rng);
  std::vector<double> gaps;
  const auto& ts = traces[0].transitions();
  for (std::size_t i = 1; i < ts.size(); ++i) gaps.push_back(ts[i] - ts[i - 1]);
  EXPECT_NEAR(math::mean(gaps), cfg.mu, 3e-12);
  EXPECT_NEAR(math::stddev(gaps), cfg.sigma, 3e-12);
}

TEST(Generator, MinWidthFloorRespected) {
  TraceConfig cfg;
  cfg.mu = 5e-12;
  cfg.sigma = 20e-12;  // would often draw negative gaps
  cfg.n_transitions = 2000;
  cfg.min_width = 1e-12;
  util::Rng rng(3);
  const auto traces = generate_traces(cfg, 1, rng);
  const auto& ts = traces[0].transitions();
  for (std::size_t i = 1; i < ts.size(); ++i) {
    EXPECT_GT(ts[i] - ts[i - 1], cfg.min_width * 0.999);
  }
}

TEST(Generator, GlobalModeSplitsOneSchedule) {
  TraceConfig cfg;
  cfg.mu = 2000e-12;
  cfg.sigma = 1000e-12;
  cfg.n_transitions = 400;
  cfg.global_mode = true;
  util::Rng rng(5);
  const auto traces = generate_traces(cfg, 2, rng);
  // The global schedule is split across inputs.
  EXPECT_EQ(traces[0].n_transitions() + traces[1].n_transitions(), 400u);
  // Roughly half each.
  EXPECT_GT(traces[0].n_transitions(), 120u);
  EXPECT_GT(traces[1].n_transitions(), 120u);
  // Transitions on different inputs are far apart (that is GLOBAL's point):
  // minimum cross-input separation should be of the pulse-width order.
  double min_sep = 1.0;
  for (double ta : traces[0].transitions()) {
    for (double tb : traces[1].transitions()) {
      min_sep = std::min(min_sep, std::abs(ta - tb));
    }
  }
  EXPECT_GT(min_sep, 1e-12);
}

TEST(Generator, StartTimeHonored) {
  TraceConfig cfg;
  cfg.t_start = 1e-9;
  cfg.n_transitions = 10;
  util::Rng rng(2);
  for (const auto& trace : generate_traces(cfg, 2, rng)) {
    EXPECT_GT(trace.transitions().front(), cfg.t_start);
  }
}

TEST(Generator, DeterministicPerSeed) {
  TraceConfig cfg;
  cfg.n_transitions = 50;
  util::Rng rng1(11);
  util::Rng rng2(11);
  const auto a = generate_traces(cfg, 2, rng1);
  const auto b = generate_traces(cfg, 2, rng2);
  EXPECT_EQ(a[0].transitions(), b[0].transitions());
  EXPECT_EQ(a[1].transitions(), b[1].transitions());
}

TEST(Generator, PaperConfigsMatchFig7) {
  const auto configs = paper_fig7_configs();
  ASSERT_EQ(configs.size(), 4u);
  EXPECT_EQ(configs[0].label(), "100/50 - LOCAL");
  EXPECT_EQ(configs[1].label(), "200/100 - LOCAL");
  EXPECT_EQ(configs[2].label(), "2000/1000 - GLOBAL");
  EXPECT_EQ(configs[3].label(), "5000/5 - GLOBAL");
  EXPECT_EQ(configs[0].n_transitions, 500u);
  EXPECT_EQ(configs[3].n_transitions, 250u);  // paper: 250 for the last
  EXPECT_FALSE(configs[0].global_mode);
  EXPECT_TRUE(configs[2].global_mode);
}

}  // namespace
}  // namespace charlie::waveform
