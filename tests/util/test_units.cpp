#include "util/units.hpp"

#include <gtest/gtest.h>

namespace charlie::units {
namespace {

TEST(Units, TimeConstantsAreConsistent) {
  EXPECT_DOUBLE_EQ(1000.0 * ps, 1.0 * ns);
  EXPECT_DOUBLE_EQ(1000.0 * fs, 1.0 * ps);
  EXPECT_DOUBLE_EQ(1e12 * ps, second);
}

TEST(Units, ElectricalConstantsAreConsistent) {
  EXPECT_DOUBLE_EQ(1000.0 * ohm, kilo_ohm);
  EXPECT_DOUBLE_EQ(1000.0 * aF, fF);
  EXPECT_DOUBLE_EQ(1e6 * uA, ampere);
}

TEST(FormatTime, PicksEngineeringScale) {
  EXPECT_EQ(format_time(28.43e-12, 2), "28.43 ps");
  EXPECT_EQ(format_time(1.5e-9), "1.500 ns");
  EXPECT_EQ(format_time(0.0), "0.000 s");
  EXPECT_EQ(format_time(-5e-12, 0), "-5 ps");
}

TEST(FormatResistance, PicksEngineeringScale) {
  EXPECT_EQ(format_resistance(45.15e3), "45.150 kOhm");
  EXPECT_EQ(format_resistance(2.0), "2.000 Ohm");
  EXPECT_EQ(format_resistance(3.3e6, 1), "3.3 MOhm");
}

TEST(FormatCapacitance, PicksEngineeringScale) {
  EXPECT_EQ(format_capacitance(617.259e-18), "617.259 aF");
  EXPECT_EQ(format_capacitance(1.2e-15, 1), "1.2 fF");
}

TEST(FormatVoltage, PicksEngineeringScale) {
  EXPECT_EQ(format_voltage(0.8), "800.000 mV");
  EXPECT_EQ(format_voltage(1.2, 1), "1.2 V");
}

}  // namespace
}  // namespace charlie::units
