#include "util/cli.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace charlie::util {
namespace {

Cli make_cli(std::vector<const char*> args) {
  args.insert(args.begin(), "prog");
  return Cli(static_cast<int>(args.size()), args.data());
}

TEST(Cli, FlagsAndDefaults) {
  Cli cli = make_cli({"--quick"});
  EXPECT_TRUE(cli.has_flag("--quick"));
  EXPECT_FALSE(cli.has_flag("--quick"));  // consumed
  EXPECT_EQ(cli.get_int("--reps", 5), 5);
  cli.finish();
}

TEST(Cli, SeparateValueForm) {
  Cli cli = make_cli({"--reps", "20"});
  EXPECT_EQ(cli.get_int("--reps", 5), 20);
  cli.finish();
}

TEST(Cli, EqualsValueForm) {
  Cli cli = make_cli({"--sigma=2.5", "--name=foo"});
  EXPECT_DOUBLE_EQ(cli.get_double("--sigma", 0.0), 2.5);
  EXPECT_EQ(cli.get_string("--name", ""), "foo");
  cli.finish();
}

TEST(Cli, MissingValueThrows) {
  Cli cli = make_cli({"--reps"});
  EXPECT_THROW(cli.get_int("--reps", 5), ConfigError);
}

TEST(Cli, InvalidNumberThrows) {
  Cli cli = make_cli({"--reps", "abc"});
  EXPECT_THROW(cli.get_int("--reps", 5), ConfigError);
  Cli cli2 = make_cli({"--sigma", "xyz"});
  EXPECT_THROW(cli2.get_double("--sigma", 0.0), ConfigError);
}

TEST(Cli, TrailingGarbageAfterNumberRejected) {
  // std::stoi/stod would silently parse the "5"/"1.5" prefix; the strict
  // parser treats a typo'd value as an error.
  Cli cli = make_cli({"--reps", "5x"});
  EXPECT_THROW(cli.get_int("--reps", 1), ConfigError);
  Cli cli2 = make_cli({"--sigma", "1.5ps"});
  EXPECT_THROW(cli2.get_double("--sigma", 0.0), ConfigError);
  Cli cli3 = make_cli({"--reps", "1.5"});
  EXPECT_THROW(cli3.get_int("--reps", 1), ConfigError);
  Cli cli4 = make_cli({"--reps", "99999999999999999999"});
  EXPECT_THROW(cli4.get_int("--reps", 1), ConfigError);
}

TEST(Cli, UnknownArgumentRejectedByFinish) {
  Cli cli = make_cli({"--tpyo"});
  EXPECT_THROW(cli.finish(), ConfigError);
}

TEST(Cli, ProgramName) {
  Cli cli = make_cli({});
  EXPECT_EQ(cli.program(), "prog");
  cli.finish();
}

}  // namespace
}  // namespace charlie::util
