#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace charlie::util {
namespace {

TEST(ThreadPool, RunsEveryItemExactlyOnce) {
  for (std::size_t n_threads : {1u, 2u, 4u}) {
    ThreadPool pool(n_threads);
    EXPECT_EQ(pool.n_threads(), n_threads);
    std::vector<std::atomic<int>> hits(101);
    pool.parallel_for(hits.size(), [&](std::size_t worker, std::size_t item) {
      EXPECT_LT(worker, n_threads);
      ++hits[item];
    });
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  }
}

TEST(ThreadPool, ReusableAcrossCalls) {
  ThreadPool pool(3);
  std::atomic<long> sum{0};
  for (int round = 0; round < 50; ++round) {
    pool.parallel_for(10, [&](std::size_t, std::size_t item) {
      sum += static_cast<long>(item);
    });
  }
  EXPECT_EQ(sum.load(), 50 * 45);
}

TEST(ThreadPool, ZeroItemsIsNoOp) {
  ThreadPool pool(2);
  pool.parallel_for(0, [](std::size_t, std::size_t) { FAIL(); });
}

TEST(ThreadPool, FirstExceptionIsRethrownAndOthersStillRun) {
  ThreadPool pool(2);
  std::vector<std::atomic<int>> hits(20);
  EXPECT_THROW(
      pool.parallel_for(hits.size(),
                        [&](std::size_t, std::size_t item) {
                          ++hits[item];
                          if (item == 3) throw std::runtime_error("boom");
                        }),
      std::runtime_error);
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  // The pool survives a failed batch.
  std::atomic<int> count{0};
  pool.parallel_for(5, [&](std::size_t, std::size_t) { ++count; });
  EXPECT_EQ(count.load(), 5);
}

TEST(ThreadPool, DefaultThreadCountIsHardware) {
  ThreadPool pool;
  EXPECT_GE(pool.n_threads(), 1u);
}

}  // namespace
}  // namespace charlie::util
