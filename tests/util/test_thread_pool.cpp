#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace charlie::util {
namespace {

TEST(ThreadPool, RunsEveryItemExactlyOnce) {
  for (std::size_t n_threads : {1u, 2u, 4u}) {
    ThreadPool pool(n_threads);
    EXPECT_EQ(pool.n_threads(), n_threads);
    std::vector<std::atomic<int>> hits(101);
    pool.parallel_for(hits.size(), [&](std::size_t worker, std::size_t item) {
      EXPECT_LT(worker, n_threads);
      ++hits[item];
    });
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  }
}

TEST(ThreadPool, ReusableAcrossCalls) {
  ThreadPool pool(3);
  std::atomic<long> sum{0};
  for (int round = 0; round < 50; ++round) {
    pool.parallel_for(10, [&](std::size_t, std::size_t item) {
      sum += static_cast<long>(item);
    });
  }
  EXPECT_EQ(sum.load(), 50 * 45);
}

TEST(ThreadPool, ZeroItemsIsNoOp) {
  ThreadPool pool(2);
  pool.parallel_for(0, [](std::size_t, std::size_t) { FAIL(); });
}

TEST(ThreadPool, FirstExceptionIsRethrownAndOthersStillRun) {
  ThreadPool pool(2);
  std::vector<std::atomic<int>> hits(20);
  EXPECT_THROW(
      pool.parallel_for(hits.size(),
                        [&](std::size_t, std::size_t item) {
                          ++hits[item];
                          if (item == 3) throw std::runtime_error("boom");
                        }),
      std::runtime_error);
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  // The pool survives a failed batch.
  std::atomic<int> count{0};
  pool.parallel_for(5, [&](std::size_t, std::size_t) { ++count; });
  EXPECT_EQ(count.load(), 5);
}

TEST(ThreadPool, DefaultThreadCountIsHardware) {
  ThreadPool pool;
  EXPECT_GE(pool.n_threads(), 1u);
}

TEST(ThreadPool, ExplicitGrainRunsEveryItemExactlyOnce) {
  ThreadPool pool(3);
  // Grain below, at, and far above the item count; all must claim every
  // item exactly once through the chunked cursor.
  for (std::size_t grain : {1u, 7u, 64u, 1000u}) {
    std::vector<std::atomic<int>> hits(97);
    pool.parallel_for(hits.size(), grain,
                      [&](std::size_t, std::size_t item) { ++hits[item]; });
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1) << "grain " << grain;
  }
}

TEST(ThreadPool, EveryItemThrowingStillRunsAllAndRethrowsOne) {
  // The contract under failure: remaining items still run (workers do not
  // abandon the batch), exactly one exception propagates to the caller.
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(50);
  EXPECT_THROW(pool.parallel_for(hits.size(),
                                 [&](std::size_t, std::size_t item) {
                                   ++hits[item];
                                   throw std::runtime_error(
                                       "item " + std::to_string(item));
                                 }),
               std::runtime_error);
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, RepeatedFailingBatchesDoNotWedgeThePool) {
  ThreadPool pool(2);
  for (int round = 0; round < 20; ++round) {
    EXPECT_THROW(pool.parallel_for(8, 1,
                                   [&](std::size_t, std::size_t item) {
                                     if (item % 2 == 0) {
                                       throw std::runtime_error("boom");
                                     }
                                   }),
                 std::runtime_error);
  }
  std::atomic<int> count{0};
  pool.parallel_for(16, [&](std::size_t, std::size_t) { ++count; });
  EXPECT_EQ(count.load(), 16);
}

TEST(ThreadPool, WavefrontStepFailureLeavesLaterStepsUsable) {
  // The sharded-circuit pattern: a sequence of dependent parallel_for
  // "steps" on one pool, where a mid-sequence step fails. The failing
  // step's remaining items must still run (its non-faulted shard tasks
  // complete their window), the exception must reach the coordinating
  // thread at that step, and every later step must execute normally.
  for (std::size_t n_threads : {1u, 2u, 4u}) {
    ThreadPool pool(n_threads);
    std::vector<std::atomic<int>> step_hits(6);
    bool threw_at_step = false;
    for (std::size_t step = 0; step < step_hits.size(); ++step) {
      try {
        pool.parallel_for(4, 1, [&](std::size_t, std::size_t item) {
          ++step_hits[step];
          if (step == 2 && item == 1) {
            throw std::runtime_error("shard task failed");
          }
        });
      } catch (const std::runtime_error&) {
        EXPECT_EQ(step, 2u);
        threw_at_step = true;
      }
    }
    EXPECT_TRUE(threw_at_step) << n_threads << " threads";
    // Every step ran all its items, including the failing one and all
    // steps after it.
    for (const auto& h : step_hits) EXPECT_EQ(h.load(), 4);
  }
}

TEST(ThreadPool, NestedExceptionTypeSurvivesPropagation) {
  // The engine throws domain types (ConvergenceError and friends) out of
  // worker threads; the pool must rethrow the original type, not a
  // slice or a generic wrapper.
  struct DomainError : std::runtime_error {
    using std::runtime_error::runtime_error;
  };
  ThreadPool pool(2);
  try {
    pool.parallel_for(8, 1, [&](std::size_t, std::size_t item) {
      if (item == 5) throw DomainError("typed");
    });
    FAIL() << "expected DomainError";
  } catch (const DomainError& e) {
    EXPECT_STREQ(e.what(), "typed");
  }
}

TEST(ThreadPool, ManySmallBatchesKeepExactSemantics) {
  // Regression for the generation-tagged cursor: a worker waking late for
  // an old batch must never claim items of a newer one. Hammer the
  // publish/claim path with many tiny batches and check the global sum.
  ThreadPool pool(4);
  std::atomic<long> sum{0};
  long expected = 0;
  for (int round = 0; round < 2000; ++round) {
    const std::size_t n = 1 + static_cast<std::size_t>(round % 7);
    for (std::size_t i = 0; i < n; ++i) expected += static_cast<long>(i);
    pool.parallel_for(n, 1, [&](std::size_t, std::size_t item) {
      sum += static_cast<long>(item);
    });
  }
  EXPECT_EQ(sum.load(), expected);
}

}  // namespace
}  // namespace charlie::util
