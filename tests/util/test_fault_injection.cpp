#include "util/fault_injection.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <string>

#include "util/error.hpp"

namespace charlie::util {
namespace {

using Action = FaultInjector::Action;
using Plan = FaultInjector::Plan;

TEST(FaultInjector, DisarmedSitesAreInert) {
  FaultInjector::Scope scope;
  EXPECT_FALSE(FaultInjector::armed());
  EXPECT_NO_THROW(FaultInjector::throw_point("some.site"));
  EXPECT_EQ(FaultInjector::corrupt_double("some.site", 1.5), 1.5);
  std::string text = "hello";
  FaultInjector::corrupt_text("some.site", text);
  EXPECT_EQ(text, "hello");
  EXPECT_FALSE(FaultInjector::trip("some.site"));
  EXPECT_EQ(FaultInjector::fires("some.site"), 0);
}

TEST(FaultInjector, ThrowPointFiresPerPlan) {
  FaultInjector::Scope scope;
  FaultInjector::arm("t.site", Plan{Action::kConvergenceError, 0, -1});
  EXPECT_THROW(FaultInjector::throw_point("t.site"), ConvergenceError);
  FaultInjector::arm("t.site", Plan{Action::kRuntimeError, 0, -1});
  EXPECT_THROW(FaultInjector::throw_point("t.site"), std::runtime_error);
  EXPECT_EQ(FaultInjector::fires("t.site"), 1);  // arm() resets fire totals
}

TEST(FaultInjector, FireAfterSkipsEarlyHits) {
  FaultInjector::Scope scope;
  FaultInjector::reset_local_hits();
  FaultInjector::arm("t.skip", Plan{Action::kRuntimeError, 2, -1});
  EXPECT_NO_THROW(FaultInjector::throw_point("t.skip"));  // hit 0
  EXPECT_NO_THROW(FaultInjector::throw_point("t.skip"));  // hit 1
  EXPECT_THROW(FaultInjector::throw_point("t.skip"),      // hit 2 fires
               std::runtime_error);
  EXPECT_EQ(FaultInjector::fires("t.skip"), 1);
}

TEST(FaultInjector, CountLimitsFiresPerLocality) {
  FaultInjector::Scope scope;
  FaultInjector::reset_local_hits();
  FaultInjector::arm("t.count", Plan{Action::kRuntimeError, 0, 1});
  EXPECT_THROW(FaultInjector::throw_point("t.count"), std::runtime_error);
  EXPECT_NO_THROW(FaultInjector::throw_point("t.count"));  // budget spent
  // A new logical run (reset tallies) fires again.
  FaultInjector::reset_local_hits();
  EXPECT_THROW(FaultInjector::throw_point("t.count"), std::runtime_error);
  EXPECT_EQ(FaultInjector::fires("t.count"), 2);
}

TEST(FaultInjector, CorruptDoubleYieldsNan) {
  FaultInjector::Scope scope;
  FaultInjector::reset_local_hits();
  FaultInjector::arm("t.nan", Plan{Action::kNanValue, 0, -1});
  EXPECT_TRUE(std::isnan(FaultInjector::corrupt_double("t.nan", 3.0)));
}

TEST(FaultInjector, CorruptTextTruncates) {
  FaultInjector::Scope scope;
  FaultInjector::reset_local_hits();
  FaultInjector::arm("t.text", Plan{Action::kTruncateText, 0, -1});
  std::string text = "0123456789";
  FaultInjector::corrupt_text("t.text", text);
  EXPECT_EQ(text, "01234");
}

TEST(FaultInjector, TripRequiresForceBranchPlan) {
  FaultInjector::Scope scope;
  FaultInjector::reset_local_hits();
  FaultInjector::arm("t.branch", Plan{Action::kForceBranch, 0, -1});
  EXPECT_TRUE(FaultInjector::trip("t.branch"));
  // Macro form compiles to the same decision.
  EXPECT_TRUE(CHARLIE_FAULT_BRANCH("t.branch"));
}

TEST(FaultInjector, SitesAreIndependent) {
  FaultInjector::Scope scope;
  FaultInjector::reset_local_hits();
  FaultInjector::arm("t.a", Plan{Action::kRuntimeError, 0, -1});
  EXPECT_NO_THROW(FaultInjector::throw_point("t.b"));
  EXPECT_THROW(FaultInjector::throw_point("t.a"), std::runtime_error);
  FaultInjector::disarm("t.a");
  EXPECT_NO_THROW(FaultInjector::throw_point("t.a"));
}

TEST(FaultInjector, ScopeDisarmsOnExit) {
  {
    FaultInjector::Scope scope;
    FaultInjector::arm("t.scoped", Plan{Action::kRuntimeError, 0, -1});
    EXPECT_TRUE(FaultInjector::armed());
  }
  EXPECT_FALSE(FaultInjector::armed());
  EXPECT_NO_THROW(FaultInjector::throw_point("t.scoped"));
}

}  // namespace
}  // namespace charlie::util
