#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "util/csv.hpp"
#include "util/error.hpp"
#include "util/table.hpp"

namespace charlie::util {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

TEST(CsvWriter, WritesHeaderAndRows) {
  const std::string path = "test_out/csv_basic.csv";
  {
    CsvWriter csv(path, {"delta_ps", "delay_ps"});
    csv.row({-60.0, 37.9});
    csv.row({0.0, 28.0});
  }
  const std::string content = slurp(path);
  EXPECT_NE(content.find("delta_ps,delay_ps\n"), std::string::npos);
  EXPECT_NE(content.find("-60,37.9"), std::string::npos);
  std::filesystem::remove_all("test_out");
}

TEST(CsvWriter, CreatesParentDirectories) {
  const std::string path = "test_out/nested/deeper/file.csv";
  { CsvWriter csv(path, {"x"}); }
  EXPECT_TRUE(std::filesystem::exists(path));
  std::filesystem::remove_all("test_out");
}

TEST(CsvWriter, RejectsMismatchedRowWidth) {
  CsvWriter csv("test_out/width.csv", {"a", "b"});
  EXPECT_THROW(csv.row({1.0}), AssertionError);
  EXPECT_THROW(csv.row_text({"1", "2", "3"}), AssertionError);
  std::filesystem::remove_all("test_out");
}

TEST(CsvParse, StrictDoubleFieldAcceptsValidNumbers) {
  EXPECT_DOUBLE_EQ(parse_double_field("1.5", "ctx"), 1.5);
  EXPECT_DOUBLE_EQ(parse_double_field("-3e-12", "ctx"), -3e-12);
  EXPECT_DOUBLE_EQ(parse_double_field("  42 ", "ctx"), 42.0);  // trimmed
  EXPECT_DOUBLE_EQ(parse_double_field("0x10", "ctx"), 16.0);   // C hex form
}

TEST(CsvParse, StrictDoubleFieldRejectsMalformedInput) {
  // Trailing garbage after a valid prefix must be rejected -- a plain
  // strtod/stod would silently accept "1.5abc" as 1.5.
  EXPECT_THROW(parse_double_field("1.5abc", "ctx"), ConfigError);
  EXPECT_THROW(parse_double_field("1.2.3", "ctx"), ConfigError);
  EXPECT_THROW(parse_double_field("3e", "ctx"), ConfigError);
  EXPECT_THROW(parse_double_field("", "ctx"), ConfigError);
  EXPECT_THROW(parse_double_field("   ", "ctx"), ConfigError);
  EXPECT_THROW(parse_double_field("12 34", "ctx"), ConfigError);
  EXPECT_THROW(parse_double_field("1e99999", "ctx"), ConfigError);  // range
  // strtod consumes these literals; the strict parser must not.
  EXPECT_THROW(parse_double_field("nan", "ctx"), ConfigError);
  EXPECT_THROW(parse_double_field("inf", "ctx"), ConfigError);
  EXPECT_THROW(parse_double_field("-infinity", "ctx"), ConfigError);
}

TEST(CsvParse, StrictLongField) {
  EXPECT_EQ(parse_long_field("-17", "ctx"), -17);
  EXPECT_EQ(parse_long_field(" 8 ", "ctx"), 8);
  EXPECT_THROW(parse_long_field("5x", "ctx"), ConfigError);
  EXPECT_THROW(parse_long_field("1.5", "ctx"), ConfigError);
  EXPECT_THROW(parse_long_field("", "ctx"), ConfigError);
  EXPECT_THROW(parse_long_field("99999999999999999999", "ctx"), ConfigError);
}

TEST(CsvReader, RoundTripsWriterOutput) {
  const std::string path = "test_out/csv_roundtrip.csv";
  {
    CsvWriter csv(path, {"delta_ps", "delay_ps"});
    csv.row({-60.0, 37.9});
    csv.row({0.0, 28.0});
    csv.row({60.0, 55.25});
  }
  const CsvData data = read_numeric_csv(path);
  ASSERT_EQ(data.columns.size(), 2u);
  EXPECT_EQ(data.columns[0], "delta_ps");
  EXPECT_EQ(data.columns[1], "delay_ps");
  ASSERT_EQ(data.rows.size(), 3u);
  EXPECT_DOUBLE_EQ(data.rows[0][0], -60.0);
  EXPECT_DOUBLE_EQ(data.rows[2][1], 55.25);
  std::filesystem::remove_all("test_out");
}

TEST(CsvReader, RejectsMalformedFilesWithClearErrors) {
  ensure_directory("test_out");
  const std::string path = "test_out/csv_bad.csv";
  auto write = [&](const std::string& content) {
    std::ofstream out(path);
    out << content;
  };
  write("a,b\n1,2garbage\n");
  EXPECT_THROW(read_numeric_csv(path), ConfigError);
  write("a,b\n1\n");  // ragged row
  EXPECT_THROW(read_numeric_csv(path), ConfigError);
  write("");  // missing header
  EXPECT_THROW(read_numeric_csv(path), ConfigError);
  write("a,b\n1,2\n\n3,4\n");  // blank lines are tolerated
  const CsvData data = read_numeric_csv(path);
  EXPECT_EQ(data.rows.size(), 2u);
  EXPECT_THROW(read_numeric_csv("test_out/does_not_exist.csv"), ConfigError);
  std::filesystem::remove_all("test_out");
}

TEST(TextTable, AlignsColumns) {
  TextTable t({"name", "value"});
  t.add_row({std::string("x"), std::string("1")});
  t.add_row({std::string("longer"), std::string("2")});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  // Both data lines must have the second column starting at the same offset.
  const auto lines_start = out.find("x ");
  ASSERT_NE(lines_start, std::string::npos);
  EXPECT_NE(out.find("longer  2"), std::string::npos);
  EXPECT_EQ(t.n_rows(), 2u);
}

TEST(TextTable, NumericRowFormatting) {
  TextTable t({"v"});
  t.add_row(std::vector<double>{1.23456}, 2);
  std::ostringstream os;
  t.print(os);
  EXPECT_NE(os.str().find("1.23"), std::string::npos);
}

TEST(TextTable, RejectsWrongWidth) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({std::string("only-one")}), AssertionError);
}

TEST(Formatting, Helpers) {
  EXPECT_EQ(fmt(3.14159, 2), "3.14");
  EXPECT_EQ(fmt_percent(-0.2801), "-28.01 %");
  EXPECT_EQ(fmt_percent(0.0726), "+7.26 %");
  EXPECT_NE(fmt_sci(1234.5, 3).find("e+03"), std::string::npos);
}

}  // namespace
}  // namespace charlie::util
