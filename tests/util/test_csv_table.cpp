#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "util/csv.hpp"
#include "util/error.hpp"
#include "util/table.hpp"

namespace charlie::util {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

TEST(CsvWriter, WritesHeaderAndRows) {
  const std::string path = "test_out/csv_basic.csv";
  {
    CsvWriter csv(path, {"delta_ps", "delay_ps"});
    csv.row({-60.0, 37.9});
    csv.row({0.0, 28.0});
  }
  const std::string content = slurp(path);
  EXPECT_NE(content.find("delta_ps,delay_ps\n"), std::string::npos);
  EXPECT_NE(content.find("-60,37.9"), std::string::npos);
  std::filesystem::remove_all("test_out");
}

TEST(CsvWriter, CreatesParentDirectories) {
  const std::string path = "test_out/nested/deeper/file.csv";
  { CsvWriter csv(path, {"x"}); }
  EXPECT_TRUE(std::filesystem::exists(path));
  std::filesystem::remove_all("test_out");
}

TEST(CsvWriter, RejectsMismatchedRowWidth) {
  CsvWriter csv("test_out/width.csv", {"a", "b"});
  EXPECT_THROW(csv.row({1.0}), AssertionError);
  EXPECT_THROW(csv.row_text({"1", "2", "3"}), AssertionError);
  std::filesystem::remove_all("test_out");
}

TEST(TextTable, AlignsColumns) {
  TextTable t({"name", "value"});
  t.add_row({std::string("x"), std::string("1")});
  t.add_row({std::string("longer"), std::string("2")});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  // Both data lines must have the second column starting at the same offset.
  const auto lines_start = out.find("x ");
  ASSERT_NE(lines_start, std::string::npos);
  EXPECT_NE(out.find("longer  2"), std::string::npos);
  EXPECT_EQ(t.n_rows(), 2u);
}

TEST(TextTable, NumericRowFormatting) {
  TextTable t({"v"});
  t.add_row(std::vector<double>{1.23456}, 2);
  std::ostringstream os;
  t.print(os);
  EXPECT_NE(os.str().find("1.23"), std::string::npos);
}

TEST(TextTable, RejectsWrongWidth) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({std::string("only-one")}), AssertionError);
}

TEST(Formatting, Helpers) {
  EXPECT_EQ(fmt(3.14159, 2), "3.14");
  EXPECT_EQ(fmt_percent(-0.2801), "-28.01 %");
  EXPECT_EQ(fmt_percent(0.0726), "+7.26 %");
  EXPECT_NE(fmt_sci(1234.5, 3).find("e+03"), std::string::npos);
}

}  // namespace
}  // namespace charlie::util
