#include "util/math.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/error.hpp"

namespace charlie::math {
namespace {

TEST(AlmostEqual, ExactValuesMatch) {
  EXPECT_TRUE(almost_equal(1.0, 1.0));
  EXPECT_TRUE(almost_equal(0.0, 0.0));
  EXPECT_TRUE(almost_equal(-3.5e-12, -3.5e-12));
}

TEST(AlmostEqual, RelativeToleranceScalesWithMagnitude) {
  EXPECT_TRUE(almost_equal(1e12, 1e12 * (1 + 1e-10), 1e-9));
  EXPECT_FALSE(almost_equal(1e12, 1e12 * (1 + 1e-8), 1e-9));
}

TEST(AlmostEqual, AbsoluteToleranceNearZero) {
  EXPECT_TRUE(almost_equal(0.0, 1e-13, 1e-9, 1e-12));
  EXPECT_FALSE(almost_equal(0.0, 1e-11, 1e-9, 1e-12));
}

TEST(LerpAt, InterpolatesAndExtrapolates) {
  EXPECT_DOUBLE_EQ(lerp_at(0.0, 0.0, 1.0, 2.0, 0.5), 1.0);
  EXPECT_DOUBLE_EQ(lerp_at(0.0, 0.0, 1.0, 2.0, 2.0), 4.0);   // extrapolate
  EXPECT_DOUBLE_EQ(lerp_at(0.0, 0.0, 1.0, 2.0, -1.0), -2.0);
}

TEST(LerpAt, DegenerateSegmentThrows) {
  EXPECT_THROW(lerp_at(1.0, 0.0, 1.0, 2.0, 1.0), AssertionError);
}

TEST(Clamp, Bounds) {
  EXPECT_DOUBLE_EQ(clamp(5.0, 0.0, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(clamp(-5.0, 0.0, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(clamp(0.25, 0.0, 1.0), 0.25);
  EXPECT_THROW(clamp(0.0, 1.0, 0.0), AssertionError);
}

TEST(Log1mExp, MatchesDirectFormula) {
  // The naive formula itself loses precision near 0, so compare with a
  // relative tolerance (log1mexp is the *more* accurate of the two).
  for (double x : {-1e-3, -0.1, -0.5, -1.0, -5.0, -40.0}) {
    const double naive = std::log(1.0 - std::exp(x));
    EXPECT_NEAR(log1mexp(x), naive, 1e-11 * std::fabs(naive) + 1e-15)
        << "x=" << x;
  }
}

TEST(Log1mExp, RequiresNegativeArgument) {
  EXPECT_THROW(log1mexp(0.0), AssertionError);
  EXPECT_THROW(log1mexp(0.5), AssertionError);
}

TEST(Sign, AllBranches) {
  EXPECT_EQ(sign(3.0), 1);
  EXPECT_EQ(sign(-2.0), -1);
  EXPECT_EQ(sign(0.0), 0);
}

TEST(Statistics, MeanStddevMedianRms) {
  const std::vector<double> v{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(mean(v), 2.5);
  EXPECT_NEAR(stddev(v), std::sqrt(5.0 / 3.0), 1e-12);
  EXPECT_DOUBLE_EQ(median(v), 2.5);
  EXPECT_NEAR(rms(v), std::sqrt(30.0 / 4.0), 1e-12);
}

TEST(Statistics, OddMedianAndEmptyInputs) {
  EXPECT_DOUBLE_EQ(median({5.0, 1.0, 3.0}), 3.0);
  EXPECT_DOUBLE_EQ(mean({}), 0.0);
  EXPECT_DOUBLE_EQ(stddev({}), 0.0);
  EXPECT_DOUBLE_EQ(stddev({1.0}), 0.0);
  EXPECT_DOUBLE_EQ(median({}), 0.0);
  EXPECT_DOUBLE_EQ(rms({}), 0.0);
}

TEST(Linspace, EndpointsExactAndEvenSpacing) {
  const auto g = linspace(-1.0, 2.0, 7);
  ASSERT_EQ(g.size(), 7u);
  EXPECT_DOUBLE_EQ(g.front(), -1.0);
  EXPECT_DOUBLE_EQ(g.back(), 2.0);
  for (std::size_t i = 1; i < g.size(); ++i) {
    EXPECT_NEAR(g[i] - g[i - 1], 0.5, 1e-12);
  }
}

TEST(Linspace, RejectsSinglePoint) {
  EXPECT_THROW(linspace(0.0, 1.0, 1), AssertionError);
}

TEST(RelError, FloorsDenominator) {
  EXPECT_NEAR(rel_error(1.1, 1.0), 0.1, 1e-12);
  EXPECT_LT(rel_error(1e-40, 0.0, 1e-30), 1e-9);
}

// Property sweep: log1mexp is monotone increasing on (-inf, 0).
class Log1mExpMonotone : public ::testing::TestWithParam<double> {};

TEST_P(Log1mExpMonotone, DecreasesWithArgument) {
  // x up => e^x up => 1 - e^x down => log down.
  const double x = GetParam();
  EXPECT_GT(log1mexp(x - 0.01), log1mexp(x));
}

INSTANTIATE_TEST_SUITE_P(Sweep, Log1mExpMonotone,
                         ::testing::Values(-0.05, -0.2, -0.69, -0.7, -1.0,
                                           -3.0, -10.0, -30.0));

}  // namespace
}  // namespace charlie::math
