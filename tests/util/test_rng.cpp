#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "util/error.hpp"
#include "util/math.hpp"

namespace charlie::util {
namespace {

TEST(Rng, DeterministicForFixedSeed) {
  Rng a(12345);
  Rng b(12345);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.uniform(0.0, 1.0), b.uniform(0.0, 1.0));
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 50; ++i) {
    if (a.uniform(0.0, 1.0) == b.uniform(0.0, 1.0)) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(Rng, UniformStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform(-2.0, 3.0);
    EXPECT_GE(v, -2.0);
    EXPECT_LT(v, 3.0);
  }
}

TEST(Rng, NormalMomentsApproximate) {
  Rng rng(99);
  std::vector<double> samples;
  samples.reserve(20000);
  for (int i = 0; i < 20000; ++i) samples.push_back(rng.normal(10.0, 2.0));
  EXPECT_NEAR(math::mean(samples), 10.0, 0.1);
  EXPECT_NEAR(math::stddev(samples), 2.0, 0.1);
}

TEST(Rng, NormalZeroSigmaIsDeterministic) {
  Rng rng(5);
  EXPECT_DOUBLE_EQ(rng.normal(3.0, 0.0), 3.0);
}

TEST(Rng, NormalAboveRespectsFloor) {
  Rng rng(11);
  for (int i = 0; i < 2000; ++i) {
    EXPECT_GT(rng.normal_above(100e-12, 50e-12, 1e-12), 1e-12);
  }
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng(3);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.uniform_int(0, 3);
    EXPECT_GE(v, 0);
    EXPECT_LE(v, 3);
    saw_lo = saw_lo || v == 0;
    saw_hi = saw_hi || v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, BernoulliProbabilityRoughlyHonored) {
  Rng rng(17);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) {
    if (rng.bernoulli(0.25)) ++hits;
  }
  EXPECT_NEAR(hits / 10000.0, 0.25, 0.02);
  EXPECT_THROW(rng.bernoulli(1.5), AssertionError);
}

TEST(Rng, ForkedStreamsAreIndependentAndReproducible) {
  Rng parent1(42);
  Rng parent2(42);
  Rng child1 = parent1.fork();
  Rng child2 = parent2.fork();
  for (int i = 0; i < 20; ++i) {
    EXPECT_DOUBLE_EQ(child1.uniform(0.0, 1.0), child2.uniform(0.0, 1.0));
  }
  // The fork advanced the parent identically.
  EXPECT_DOUBLE_EQ(parent1.uniform(0.0, 1.0), parent2.uniform(0.0, 1.0));
}

TEST(CounterRng, StreamIsPureFunctionOfKey) {
  CounterRng a(2022, 17);
  CounterRng b(2022, 17);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(CounterRng, OrderIndependentAcrossIndices) {
  // Drawing index 5's stream must not depend on whether indices 0..4 were
  // ever touched: reconstructing the stream fresh gives identical words.
  std::vector<std::uint64_t> sequential;
  for (std::uint64_t idx = 0; idx < 8; ++idx) {
    CounterRng rng(7, idx);
    for (int i = 0; i < 4; ++i) sequential.push_back(rng.next_u64());
  }
  // Reverse visiting order.
  std::vector<std::uint64_t> reversed(sequential.size());
  for (std::uint64_t idx = 8; idx-- > 0;) {
    CounterRng rng(7, idx);
    for (int i = 0; i < 4; ++i) reversed[idx * 4 + i] = rng.next_u64();
  }
  EXPECT_EQ(sequential, reversed);
}

TEST(CounterRng, AdjacentKeysDecorrelate) {
  // (seed, index) and (seed+1, index), (seed, index+1) must all differ.
  CounterRng a(100, 0);
  CounterRng b(101, 0);
  CounterRng c(100, 1);
  int same_ab = 0;
  int same_ac = 0;
  for (int i = 0; i < 64; ++i) {
    const auto va = a.next_u64();
    if (va == b.next_u64()) ++same_ab;
    if (va == c.next_u64()) ++same_ac;
  }
  EXPECT_EQ(same_ab, 0);
  EXPECT_EQ(same_ac, 0);
}

TEST(CounterRng, Uniform01InUnitInterval) {
  CounterRng rng(1, 2);
  for (int i = 0; i < 2000; ++i) {
    const double v = rng.uniform01();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(CounterRng, NormalMomentsApproximate) {
  CounterRng rng(99, 3);
  std::vector<double> samples;
  samples.reserve(20000);
  for (int i = 0; i < 20000; ++i) samples.push_back(rng.normal(10.0, 2.0));
  EXPECT_NEAR(math::mean(samples), 10.0, 0.1);
  EXPECT_NEAR(math::stddev(samples), 2.0, 0.1);
}

TEST(CounterRng, NormalClampedRespectsTruncation) {
  CounterRng rng(5, 0);
  bool saw_tail = false;
  for (int i = 0; i < 5000; ++i) {
    const double v = rng.normal_clamped(0.0, 1.0, 2.0);
    EXPECT_GE(v, -2.0);
    EXPECT_LE(v, 2.0);
    saw_tail = saw_tail || std::abs(v) > 1.5;
  }
  EXPECT_TRUE(saw_tail);  // the clamp truncates, it does not squash
}

}  // namespace
}  // namespace charlie::util
