#include "util/rng.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"
#include "util/math.hpp"

namespace charlie::util {
namespace {

TEST(Rng, DeterministicForFixedSeed) {
  Rng a(12345);
  Rng b(12345);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.uniform(0.0, 1.0), b.uniform(0.0, 1.0));
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 50; ++i) {
    if (a.uniform(0.0, 1.0) == b.uniform(0.0, 1.0)) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(Rng, UniformStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform(-2.0, 3.0);
    EXPECT_GE(v, -2.0);
    EXPECT_LT(v, 3.0);
  }
}

TEST(Rng, NormalMomentsApproximate) {
  Rng rng(99);
  std::vector<double> samples;
  samples.reserve(20000);
  for (int i = 0; i < 20000; ++i) samples.push_back(rng.normal(10.0, 2.0));
  EXPECT_NEAR(math::mean(samples), 10.0, 0.1);
  EXPECT_NEAR(math::stddev(samples), 2.0, 0.1);
}

TEST(Rng, NormalZeroSigmaIsDeterministic) {
  Rng rng(5);
  EXPECT_DOUBLE_EQ(rng.normal(3.0, 0.0), 3.0);
}

TEST(Rng, NormalAboveRespectsFloor) {
  Rng rng(11);
  for (int i = 0; i < 2000; ++i) {
    EXPECT_GT(rng.normal_above(100e-12, 50e-12, 1e-12), 1e-12);
  }
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng(3);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.uniform_int(0, 3);
    EXPECT_GE(v, 0);
    EXPECT_LE(v, 3);
    saw_lo = saw_lo || v == 0;
    saw_hi = saw_hi || v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, BernoulliProbabilityRoughlyHonored) {
  Rng rng(17);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) {
    if (rng.bernoulli(0.25)) ++hits;
  }
  EXPECT_NEAR(hits / 10000.0, 0.25, 0.02);
  EXPECT_THROW(rng.bernoulli(1.5), AssertionError);
}

TEST(Rng, ForkedStreamsAreIndependentAndReproducible) {
  Rng parent1(42);
  Rng parent2(42);
  Rng child1 = parent1.fork();
  Rng child2 = parent2.fork();
  for (int i = 0; i < 20; ++i) {
    EXPECT_DOUBLE_EQ(child1.uniform(0.0, 1.0), child2.uniform(0.0, 1.0));
  }
  // The fork advanced the parent identically.
  EXPECT_DOUBLE_EQ(parent1.uniform(0.0, 1.0), parent2.uniform(0.0, 1.0));
}

}  // namespace
}  // namespace charlie::util
