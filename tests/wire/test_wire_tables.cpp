// The interconnect collapse: moments of the discrete ladder, the Pade
// 2-state reduction, and its closed-form trajectories against RK45 -- both
// of the reduced system (exactness of the table machinery) and of the full
// N-state ladder (reduction quality).
#include "wire/wire_tables.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "ode/rk45.hpp"
#include "util/error.hpp"
#include "wire/wire_params.hpp"

namespace charlie {
namespace {

// RK45 integration of the full N-state ladder with a constant rail drive.
std::vector<double> full_ladder_at(const wire::WireParams& p, double v_drive,
                                   std::vector<double> x0, double t) {
  const int n = p.n_sections;
  std::vector<double> r(static_cast<std::size_t>(n), p.r_total / n);
  std::vector<double> c(static_cast<std::size_t>(n), p.c_total / n);
  r[0] += p.r_drive;
  c[static_cast<std::size_t>(n - 1)] += p.c_load;
  const ode::OdeRhs rhs = [&](double, std::span<const double> x,
                              std::span<double> dx) {
    for (int i = 0; i < n; ++i) {
      const double v_left = i == 0 ? v_drive : x[i - 1];
      const double i_left = (v_left - x[i]) / r[static_cast<std::size_t>(i)];
      const double i_right =
          i == n - 1 ? 0.0
                     : (x[i] - x[i + 1]) / r[static_cast<std::size_t>(i + 1)];
      dx[i] = (i_left - i_right) / c[static_cast<std::size_t>(i)];
    }
  };
  ode::Rk45Options opts;
  opts.rtol = 1e-11;
  opts.atol = 1e-14;
  const auto res = ode::integrate_rk45(rhs, x0, 0.0, t, opts);
  return res.x_final;
}

TEST(WireMoments, FirstMomentIsTheElmoreDelay) {
  const wire::WireParams p = wire::WireParams::reference();
  const auto m = wire::wire_moments(p);
  EXPECT_NEAR(-m.m1, p.elmore_delay(), 1e-18 * p.elmore_delay() + 1e-30);
  EXPECT_GT(m.m2, 0.0);
}

TEST(WireMoments, MatchesClosedFormForOneSection) {
  // One section with r_drive and c_load: two caps, two resistors. Moments
  // by hand: m1 = -(R1 C1 + (R1+R2) C2), m2 = first-order voltages pushed
  // through once more.
  wire::WireParams p;
  p.r_total = 2e3;
  p.c_total = 1e-15;
  p.n_sections = 1;
  p.r_drive = 3e3;
  p.c_load = 0.5e-15;
  // n_sections = 1 puts the whole c_total and c_load on the single tap:
  // one RC with R = r_drive + r_total, C = c_total + c_load.
  const double rr = p.r_drive + p.r_total;
  const double cc = p.c_total + p.c_load;
  const auto m = wire::wire_moments(p);
  EXPECT_NEAR(m.m1, -rr * cc, 1e-12 * rr * cc);
  // Single pole: m2 = m1^2 exactly.
  EXPECT_NEAR(m.m2, rr * cc * rr * cc, 1e-12 * rr * cc * rr * cc);
}

TEST(WireMoments, DistributedLimitApproachesTheoreticalCoefficients) {
  // Pure line (no r_drive/c_load), N -> inf: H(s) = 1/cosh(sqrt(s R C))
  // gives b1 = RC/2 and b2 = (RC)^2/24.
  wire::WireParams p;
  p.r_total = 10e3;
  p.c_total = 2e-15;
  p.n_sections = 64;
  p.r_drive = 0.0;
  p.c_load = 0.0;
  const wire::WireModeTables tables(p);
  const double rc = p.r_total * p.c_total;
  EXPECT_NEAR(tables.b1(), 0.5 * rc, 0.01 * rc);
  EXPECT_NEAR(tables.b2(), rc * rc / 24.0, 0.002 * rc * rc);
}

TEST(WireModeTables, BothDriveStatesAreStableWithScalarExpansion) {
  const wire::WireModeTables tables(wire::WireParams::reference());
  for (bool high : {false, true}) {
    const auto& t = tables.drive_table(high);
    EXPECT_TRUE(t.scalar_valid);
    EXPECT_TRUE(t.spectral_valid);
    EXPECT_LT(t.l1, 0.0);
    EXPECT_LT(t.l2, 0.0);
    // DC gain 1: the equilibrium output voltage is the drive rail.
    EXPECT_NEAR(t.steady.y, high ? tables.params().vdd : 0.0, 1e-12);
    EXPECT_NEAR(t.xp.y, t.steady.y, 1e-9);
  }
  EXPECT_GT(tables.horizon(), 10.0 * tables.elmore_delay());
}

TEST(WireModeTables, ClosedFormMatchesRk45OfTheReducedSystem) {
  // The spectral/scalar forms must reproduce the reduced ODE exactly (the
  // same guarantee the gate tables carry, same tolerance regime).
  const wire::WireModeTables tables(wire::WireParams::reference());
  for (bool high : {false, true}) {
    const auto& t = tables.drive_table(high);
    const ode::Vec2 x0{0.1, 0.37};  // generic interior state
    const ode::OdeRhs rhs = [&](double, std::span<const double> x,
                                std::span<double> dx) {
      const ode::Vec2 d = t.ode.derivative({x[0], x[1]});
      dx[0] = d.x;
      dx[1] = d.y;
    };
    ode::Rk45Options opts;
    opts.rtol = 1e-11;
    opts.atol = 1e-14;
    for (double at : {5e-12, 25e-12, 80e-12, 300e-12}) {
      const double x0_arr[] = {x0.x, x0.y};
      const auto numeric = ode::integrate_rk45(rhs, x0_arr, 0.0, at, opts);
      const ode::Vec2 dev = x0 - t.xp;
      const ode::Vec2 exact = t.xp + std::exp(t.l1 * at) * (t.s1 * dev) +
                              std::exp(t.l2 * at) * (t.s2 * dev);
      EXPECT_NEAR(exact.x, numeric.x_final[0], 1e-8) << "high=" << high;
      EXPECT_NEAR(exact.y, numeric.x_final[1], 1e-8) << "high=" << high;
    }
  }
}

TEST(WireModeTables, StepResponseTracksTheFullLadder) {
  // Reduction quality: the collapsed V_out step response stays within a few
  // percent of VDD of the full N-state ladder at all sampled times.
  for (int sections : {4, 8, 16}) {
    wire::WireParams p = wire::WireParams::reference();
    p.n_sections = sections;
    const wire::WireModeTables tables(p);
    const auto& t = tables.drive_table(true);
    const ode::Vec2 x0 = tables.drive_table(false).steady;  // line at GND
    std::vector<double> full0(static_cast<std::size_t>(sections), 0.0);
    for (double frac : {0.25, 0.5, 1.0, 2.0, 4.0}) {
      const double at = frac * tables.elmore_delay();
      const ode::Vec2 dev = x0 - t.xp;
      const double reduced = (t.xp + std::exp(t.l1 * at) * (t.s1 * dev) +
                              std::exp(t.l2 * at) * (t.s2 * dev))
                                 .y;
      const double full =
          full_ladder_at(p, p.vdd, full0, at).back();
      EXPECT_NEAR(reduced, full, 0.04 * p.vdd)
          << "sections=" << sections << " t/elmore=" << frac;
    }
  }
}

TEST(WireModeTables, OneSectionCollapsesToASinglePole) {
  // One section is exactly one RC: m2 = m1^2, so b2 = 0 and the collapse
  // degenerates to V_out' = (V_drive - V_out)/b1.
  wire::WireParams p;
  p.r_total = 5e3;
  p.c_total = 2e-15;
  p.n_sections = 1;
  p.r_drive = 1e3;
  p.c_load = 1e-15;
  const wire::WireModeTables tables(p);
  EXPECT_EQ(tables.b2(), 0.0);
  const double rc = (p.r_drive + p.r_total) * (p.c_total + p.c_load);
  EXPECT_NEAR(tables.b1(), rc, 1e-12 * rc);
  const auto& t = tables.drive_table(true);
  ASSERT_TRUE(t.scalar_valid);
  // Rising step from GND: crossing V_th at RC ln 2.
  const ode::Vec2 x0{0.0, 0.0};
  const ode::Vec2 dev = x0 - t.xp;
  const double at = rc * std::log(2.0);
  const double v = (t.xp + std::exp(t.l1 * at) * (t.s1 * dev) +
                    std::exp(t.l2 * at) * (t.s2 * dev))
                       .y;
  EXPECT_NEAR(v, 0.5 * p.vdd, 1e-9);
}

TEST(WireParams, ValidationRejectsBadValues) {
  wire::WireParams p = wire::WireParams::reference();
  p.r_total = 0.0;
  EXPECT_THROW(p.validate(), ConfigError);
  p = wire::WireParams::reference();
  p.c_total = -1e-15;
  EXPECT_THROW(p.validate(), ConfigError);
  p = wire::WireParams::reference();
  p.n_sections = 0;
  EXPECT_THROW(p.validate(), ConfigError);
  p = wire::WireParams::reference();
  p.n_sections = wire::kMaxWireSections + 1;
  EXPECT_THROW(p.validate(), ConfigError);
  p = wire::WireParams::reference();
  p.r_drive = -1.0;
  EXPECT_THROW(p.validate(), ConfigError);
  p = wire::WireParams::reference();
  p.vdd = 0.0;
  EXPECT_THROW(p.validate(), ConfigError);
  EXPECT_NO_THROW(wire::WireParams::reference().validate());
}

TEST(WireParams, FingerprintDistinguishesGeometries) {
  const wire::WireParams a = wire::WireParams::reference();
  wire::WireParams b = a;
  EXPECT_EQ(a.fingerprint(), b.fingerprint());
  b.c_load = a.c_load + 1e-18;
  EXPECT_NE(a.fingerprint(), b.fingerprint());
}

}  // namespace
}  // namespace charlie
