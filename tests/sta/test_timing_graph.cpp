// sta::TimingGraph semantics on hand-built netlists with known SIS delays:
// arrival sums, unateness (including non-unate XOR), required/slack against
// a deadline, endpoint fallback, wire arcs in the graph, exact top-K path
// enumeration, and the degenerate (deterministic) SSTA pass.
#include "sta/timing_graph.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "cell/cell_library.hpp"
#include "cell/netlist.hpp"
#include "sim/process_variation.hpp"

namespace charlie::sta {
namespace {

// Reference library with round SIS delays on the non-hybrid cells so path
// sums are exact by construction: BUF 10/20 ps, INV 5/7 ps, AND2 1/2 ps,
// OR2 3/4 ps, XOR2 3/4 ps (rise/fall).
std::shared_ptr<const cell::CellLibrary> test_library() {
  static const auto library = [] {
    cell::CellLibrary lib = cell::CellLibrary::reference();
    lib.set_sis_delays("BUF", 10e-12, 20e-12);
    lib.set_sis_delays("INV", 5e-12, 7e-12);
    lib.set_sis_delays("AND2", 1e-12, 2e-12);
    lib.set_sis_delays("OR2", 3e-12, 4e-12);
    lib.set_sis_delays("XOR2", 3e-12, 4e-12);
    return std::make_shared<const cell::CellLibrary>(std::move(lib));
  }();
  return library;
}

TimingGraph make_graph(const std::string& text) {
  return TimingGraph(cell::parse_netlist(text), test_library());
}

const NetTiming& timing_of(const TimingResult& result,
                           const std::string& net) {
  for (const NetTiming& t : result.nets) {
    if (t.net == net) return t;
  }
  ADD_FAILURE() << "net " << net << " missing from the timing table";
  static const NetTiming none;
  return none;
}

// a -> BUF -> INV -> INV: arrivals are plain arc sums with the unateness
// flips of each stage (BUF positive, INV negative).
TEST(TimingGraph, ChainArrivalsSumTheArcs) {
  const TimingGraph graph = make_graph(
      "input(a)\n"
      "BUF(b, a)\n"
      "INV(c, b)\n"
      "INV(d, c)\n"
      "output(d)\n");
  const TimingResult result = graph.analyze(graph.nominal_arcs(), 0.0);

  const NetTiming& b = timing_of(result, "b");
  EXPECT_NEAR(b.arrival_rise, 10e-12, 1e-18);
  EXPECT_NEAR(b.arrival_fall, 20e-12, 1e-18);
  // c falls when b rises (INV): 10 + 7; c rises when b falls: 20 + 5.
  const NetTiming& c = timing_of(result, "c");
  EXPECT_NEAR(c.arrival_fall, 17e-12, 1e-18);
  EXPECT_NEAR(c.arrival_rise, 25e-12, 1e-18);
  // d falls when c rises (INV): 25 + 7; d rises when c falls: 17 + 5.
  const NetTiming& d = timing_of(result, "d");
  EXPECT_NEAR(d.arrival_rise, 22e-12, 1e-18);
  EXPECT_NEAR(d.arrival_fall, 32e-12, 1e-18);

  EXPECT_NEAR(result.critical_delay, 32e-12, 1e-18);
  EXPECT_EQ(result.critical_endpoint, "d");
  EXPECT_FALSE(result.critical_rising);
  // Unconstrained: slack is measured against the critical delay itself.
  EXPECT_NEAR(result.worst_slack, 0.0, 1e-18);
}

TEST(TimingGraph, DeadlineSetsRequiredTimesAndSlack) {
  const TimingGraph graph = make_graph(
      "input(a)\n"
      "BUF(b, a)\n"
      "INV(c, b)\n"
      "INV(d, c)\n"
      "output(d)\n");
  const TimingResult result =
      graph.analyze(graph.nominal_arcs(), 36e-12);

  const NetTiming& d = timing_of(result, "d");
  EXPECT_NEAR(d.required_rise, 36e-12, 1e-18);
  EXPECT_NEAR(d.required_fall, 36e-12, 1e-18);
  EXPECT_NEAR(d.slack, 4e-12, 1e-18);
  // Backward through the chain: a rising reaches d rising after 22 ps, a
  // falling reaches d falling after 32 ps.
  const NetTiming& a = timing_of(result, "a");
  EXPECT_NEAR(a.required_rise, 36e-12 - 22e-12, 1e-18);
  EXPECT_NEAR(a.required_fall, 36e-12 - 32e-12, 1e-18);
  EXPECT_NEAR(a.slack, 4e-12, 1e-18);
  EXPECT_NEAR(result.worst_slack, 4e-12, 1e-18);

  // A deadline tighter than the critical delay goes negative.
  const TimingResult late = graph.analyze(graph.nominal_arcs(), 25e-12);
  EXPECT_NEAR(late.worst_slack, -7e-12, 1e-18);
}

// XOR feeds BOTH input directions into both output directions; the same
// netlist with AND2 (positive unate) sees only the matching direction.
TEST(TimingGraph, XorIsNonUnate) {
  const TimingGraph xg = make_graph(
      "input(a, b)\n"
      "INV(n, a)\n"
      "XOR2(x, n, b)\n"
      "output(x)\n");
  const TimingResult xr = xg.analyze(xg.nominal_arcs(), 0.0);
  // n arrives rise 5 / fall 7 ps; XOR rise arcs take the LATER direction.
  EXPECT_NEAR(timing_of(xr, "x").arrival_rise, 7e-12 + 3e-12, 1e-18);
  EXPECT_NEAR(timing_of(xr, "x").arrival_fall, 7e-12 + 4e-12, 1e-18);

  const TimingGraph ag = make_graph(
      "input(a, b)\n"
      "INV(n, a)\n"
      "AND2(x, n, b)\n"
      "output(x)\n");
  const TimingResult ar = ag.analyze(ag.nominal_arcs(), 0.0);
  // AND2 rising only sees n rising (5 ps), not n falling (7 ps).
  EXPECT_NEAR(timing_of(ar, "x").arrival_rise, 5e-12 + 1e-12, 1e-18);
  EXPECT_NEAR(timing_of(ar, "x").arrival_fall, 7e-12 + 2e-12, 1e-18);
}

TEST(TimingGraph, EndpointsFallBackToTheLastInstanceOutput) {
  const TimingGraph declared = make_graph(
      "input(a)\n"
      "INV(x, a)\n"
      "INV(y, x)\n"
      "output(x)\n");
  EXPECT_EQ(declared.endpoints(), std::vector<std::string>{"x"});
  const TimingGraph fallback = make_graph(
      "input(a)\n"
      "INV(x, a)\n"
      "INV(y, x)\n");
  EXPECT_EQ(fallback.endpoints(), std::vector<std::string>{"y"});
}

TEST(TimingGraph, WireArcsEnterThePath) {
  const TimingGraph graph = make_graph(
      "input(a)\n"
      "BUF(b, a)\n"
      "WIRE(w, b, r=200, c=50e-15, tdrive=10e-12)\n"
      "output(w)\n");
  // Unified element order: the wire is element 1 (after the one gate).
  const ArcSet& arcs = graph.nominal_arcs();
  ASSERT_EQ(arcs.elements.size(), 2u);
  const double step_rise = arcs.elements[1].rise[0];
  const double step_fall = arcs.elements[1].fall[0];
  EXPECT_GT(step_rise, 0.0);
  const TimingResult result = graph.analyze(arcs, 0.0);
  EXPECT_NEAR(timing_of(result, "w").arrival_rise, 10e-12 + step_rise,
              1e-18);
  EXPECT_NEAR(timing_of(result, "w").arrival_fall, 20e-12 + step_fall,
              1e-18);
}

TEST(TimingGraph, CriticalPathsComeOutInExactDecreasingOrder) {
  const TimingGraph graph = make_graph(
      "input(a, b)\n"
      "BUF(p, a)\n"
      "BUF(q1, b)\n"
      "BUF(q, q1)\n"
      "AND2(y, p, q)\n"
      "output(y)\n");
  // Four distinct input-to-endpoint paths:
  //   b falling via q1, q : 20 + 20 + 2 = 42 ps
  //   a falling via p     : 20      + 2 = 22 ps
  //   b rising  via q1, q : 10 + 10 + 1 = 21 ps
  //   a rising  via p     : 10      + 1 = 11 ps
  const auto paths = graph.critical_paths(graph.nominal_arcs(), 10);
  ASSERT_EQ(paths.size(), 4u);
  EXPECT_NEAR(paths[0].delay, 42e-12, 1e-18);
  EXPECT_NEAR(paths[1].delay, 22e-12, 1e-18);
  EXPECT_NEAR(paths[2].delay, 21e-12, 1e-18);
  EXPECT_NEAR(paths[3].delay, 11e-12, 1e-18);

  // The winner's steps: b v @ 0 -> q1 v @ 20 -> q v @ 40 -> y v @ 42.
  const CriticalPath& top = paths[0];
  ASSERT_EQ(top.steps.size(), 4u);
  EXPECT_EQ(top.steps[0].net, "b");
  EXPECT_EQ(top.steps[1].net, "q1");
  EXPECT_EQ(top.steps[2].net, "q");
  EXPECT_EQ(top.steps[3].net, "y");
  for (const PathStep& step : top.steps) EXPECT_FALSE(step.rising);
  EXPECT_NEAR(top.steps[0].t, 0.0, 1e-18);
  EXPECT_NEAR(top.steps[1].t, 20e-12, 1e-18);
  EXPECT_NEAR(top.steps[2].t, 40e-12, 1e-18);
  EXPECT_NEAR(top.steps[3].t, 42e-12, 1e-18);

  // k truncates without reordering.
  const auto top2 = graph.critical_paths(graph.nominal_arcs(), 2);
  ASSERT_EQ(top2.size(), 2u);
  EXPECT_NEAR(top2[0].delay, 42e-12, 1e-18);
  EXPECT_NEAR(top2[1].delay, 22e-12, 1e-18);
}

TEST(TimingGraph, DisabledVariationSstaDegeneratesToTheCriticalDelay) {
  const TimingGraph graph = make_graph(
      "input(a, b)\n"
      "BUF(p, a)\n"
      "BUF(q1, b)\n"
      "BUF(q, q1)\n"
      "AND2(y, p, q)\n"
      "output(y)\n");
  const sim::ProcessVariation off;  // all sigmas 0
  const Canonical delay = graph.analyze_ssta(graph.canonical_arcs(off));
  EXPECT_NEAR(delay.mean, 42e-12, 1e-18);
  EXPECT_DOUBLE_EQ(delay.sigma(), 0.0);
}

}  // namespace
}  // namespace charlie::sta
