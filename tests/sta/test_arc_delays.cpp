// Static arc extraction: SIS arcs are the characterized inertial delays,
// hybrid arcs are the conservative characteristic envelope plus the pure
// delay, wire arcs are the settled-line step crossing -- and the envelope
// really does bound staggered-arrival crossings of the underlying model.
#include "sta/arc_delays.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>
#include <vector>

#include "cell/cell_library.hpp"
#include "cell/netlist.hpp"
#include "core/gate_delay.hpp"
#include "sim/circuit_builder.hpp"
#include "wire/wire_tables.hpp"

namespace charlie::sta {
namespace {

std::shared_ptr<const cell::CellLibrary> reference_library() {
  static const auto library = std::make_shared<const cell::CellLibrary>(
      cell::CellLibrary::reference());
  return library;
}

TEST(ArcTable, SisCellsCarryTheCharacterizedDelaysOnEveryPin) {
  const auto library = reference_library();
  for (const char* name : {"INV", "BUF", "AND2", "OR2", "XOR2"}) {
    const cell::CellSpec* spec = library->find(name);
    ASSERT_NE(spec, nullptr) << name;
    ASSERT_FALSE(spec->hybrid) << name;
    const cell::CellArcTable arcs = spec->arc_table();
    ASSERT_EQ(arcs.output_rise.size(), static_cast<std::size_t>(spec->arity));
    ASSERT_EQ(arcs.output_fall.size(), static_cast<std::size_t>(spec->arity));
    for (int pin = 0; pin < spec->arity; ++pin) {
      EXPECT_DOUBLE_EQ(arcs.output_rise[pin], spec->rise_delay) << name;
      EXPECT_DOUBLE_EQ(arcs.output_fall[pin], spec->fall_delay) << name;
    }
  }
}

TEST(ArcTable, HybridEnvelopeDominatesEveryCharacteristicDelay) {
  const auto library = reference_library();
  for (const char* name : {"NOR2", "NAND2", "NOR3", "NAND3"}) {
    const cell::CellSpec* spec = library->find(name);
    ASSERT_NE(spec, nullptr) << name;
    ASSERT_TRUE(spec->hybrid) << name;
    const cell::CellArcTable arcs = spec->arc_table();
    const core::GateSisDelays sis =
        core::gate_characteristic_delays(*spec->tables);
    const double delta = spec->params.delta_min;
    ASSERT_EQ(arcs.output_rise.size(), static_cast<std::size_t>(spec->arity));
    for (int pin = 0; pin < spec->arity; ++pin) {
      const auto p = static_cast<std::size_t>(pin);
      // Per pin: envelope >= that pin's single-switch delay and >= the
      // all-simultaneous delay, each plus the pure delay delta_min.
      EXPECT_GE(arcs.output_rise[p], sis.rise[p] + delta - 1e-18) << name;
      EXPECT_GE(arcs.output_fall[p], sis.fall[p] + delta - 1e-18) << name;
      EXPECT_GE(arcs.output_rise[p], sis.rise_all + delta - 1e-18) << name;
      EXPECT_GE(arcs.output_fall[p], sis.fall_all + delta - 1e-18) << name;
      // And it is tight: exactly the max of the two regimes.
      EXPECT_NEAR(arcs.output_rise[p],
                  std::max(sis.rise[p], sis.rise_all) + delta, 1e-18) << name;
      EXPECT_NEAR(arcs.output_fall[p],
                  std::max(sis.fall[p], sis.fall_all) + delta, 1e-18) << name;
    }
  }
}

// The path-level conservatism claim behind the whole analyzer: for ANY
// staggered input schedule, the model's output crossing is no later than
// max_i (t_i + arc_i). Exercised on the raw mode tables (delta_min applies
// identically to both sides, so it cancels).
TEST(ArcEnvelope, BoundsStaggeredNor2Crossings) {
  const cell::CellSpec* spec = reference_library()->find("NOR2");
  ASSERT_NE(spec, nullptr);
  const core::GateModeTables& tables = *spec->tables;
  const core::GateArcEnvelope env = core::gate_arc_envelope(tables);
  for (double hold : {0.0, tables.default_hold()}) {
    for (double delta : {0.0, 5e-12, 20e-12, 60e-12, 150e-12}) {
      // Falling: inputs rise staggered from the (0,0) steady state.
      {
        const core::GateInputEvent events[] = {{0.0, 0, true},
                                               {delta, 1, true}};
        const double t = core::gate_output_crossing(tables, 0u, hold, events,
                                                    /*rising=*/false);
        const double bound = std::max(env.fall[0], delta + env.fall[1]);
        EXPECT_LE(t, bound + 1e-15) << "delta=" << delta << " hold=" << hold;
      }
      // Rising: inputs fall staggered from the (1,1) steady state.
      {
        const core::GateInputEvent events[] = {{0.0, 0, false},
                                               {delta, 1, false}};
        const double t = core::gate_output_crossing(tables, 3u, hold, events,
                                                    /*rising=*/true);
        const double bound = std::max(env.rise[0], delta + env.rise[1]);
        EXPECT_LE(t, bound + 1e-15) << "delta=" << delta << " hold=" << hold;
      }
    }
  }
}

TEST(ArcEnvelope, BoundsStaggeredNand3Crossings) {
  const cell::CellSpec* spec = reference_library()->find("NAND3");
  ASSERT_NE(spec, nullptr);
  const core::GateModeTables& tables = *spec->tables;
  const core::GateArcEnvelope env = core::gate_arc_envelope(tables);
  // All three inputs rise staggered: output falls once the series stack
  // conducts (after the last arrival).
  for (double hold : {0.0, tables.default_hold()}) {
    const double t0 = 0.0;
    const double t1 = 12e-12;
    const double t2 = 47e-12;
    const core::GateInputEvent events[] = {
        {t0, 0, true}, {t1, 1, true}, {t2, 2, true}};
    const double t = core::gate_output_crossing(tables, 0u, hold, events,
                                                /*rising=*/false);
    const double bound = std::max(
        {t0 + env.fall[0], t1 + env.fall[1], t2 + env.fall[2]});
    EXPECT_LE(t, bound + 1e-15) << "hold=" << hold;
  }
}

TEST(WireArcs, NearSinglePoleStepDelayIsLn2TimesTheTimeConstant) {
  // A negligible line behind a dominant driver pole: b2 -> 0 and the
  // second-order Pade model collapses to V(t) = 1 - exp(-t/b1), whose
  // VDD/2 crossing is b1 ln 2.
  wire::WireParams params;
  params.r_total = 1e-3;
  params.c_total = 1e-18;
  params.n_sections = 1;
  params.r_drive = 1000.0;
  params.c_load = 10e-15;
  params.t_drive = 0.0;
  const wire::WireModeTables tables(params);
  ASSERT_LT(tables.b2(), 1e-3 * tables.b1() * tables.b1());
  const double expected = tables.b1() * std::log(2.0);
  EXPECT_NEAR(tables.step_delay(true), expected, 0.02 * expected);
  EXPECT_NEAR(tables.step_delay(false), expected, 0.02 * expected);
}

TEST(WireArcs, DriveShapeCorrectionAddsToTheStepDelay) {
  wire::WireParams slow;
  slow.r_total = 200.0;
  slow.c_total = 50e-15;
  slow.n_sections = 8;
  slow.t_drive = 20e-12;
  wire::WireParams ideal = slow;
  ideal.t_drive = 0.0;
  const wire::WireModeTables with_drive(slow);
  const wire::WireModeTables step(ideal);
  const double correction = (1.0 - std::log(2.0)) * slow.t_drive;
  EXPECT_NEAR(with_drive.step_delay(true),
              step.step_delay(true) + correction, 1e-15);
  EXPECT_NEAR(with_drive.drive_delay(), correction, 1e-15);
}

TEST(ExtractArcs, UnifiedElementOrderGatesFirstThenWires) {
  const cell::NetlistDesc desc = cell::parse_netlist(
      "input(a, b, c)\n"
      "NOR2(x, a, b)\n"
      "AND2(y, x, c)\n"
      "WIRE(z, y, r=200, c=50e-15, tdrive=10e-12)\n"
      "output(z)\n");
  const auto library = reference_library();
  const sim::CircuitBuilder builder(library);
  const ArcSet arcs = extract_arcs(desc, *library, builder);
  ASSERT_EQ(arcs.elements.size(), 3u);

  const cell::CellArcTable nor2 = library->find("NOR2")->arc_table();
  const cell::CellArcTable and2 = library->find("AND2")->arc_table();
  EXPECT_EQ(arcs.elements[0].rise, nor2.output_rise);
  EXPECT_EQ(arcs.elements[0].fall, nor2.output_fall);
  EXPECT_EQ(arcs.elements[1].rise, and2.output_rise);
  EXPECT_EQ(arcs.elements[1].fall, and2.output_fall);

  const auto wire_tables = builder.wire_tables(desc.wires[0]);
  ASSERT_EQ(arcs.elements[2].rise.size(), 1u);
  EXPECT_DOUBLE_EQ(arcs.elements[2].rise[0], wire_tables->step_delay(true));
  EXPECT_DOUBLE_EQ(arcs.elements[2].fall[0], wire_tables->step_delay(false));
  EXPECT_GT(arcs.elements[2].rise[0], 0.0);
}

}  // namespace
}  // namespace charlie::sta
