// sta::Canonical algebra: normal helpers, exact sums, quantiles, and
// Clark's statistical max validated against direct Monte-Carlo sampling of
// the same jointly normal pair.
#include "sta/canonical.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <random>
#include <vector>

namespace charlie::sta {
namespace {

TEST(Normal, CdfAnchors) {
  EXPECT_NEAR(normal_cdf(0.0), 0.5, 1e-15);
  EXPECT_NEAR(normal_cdf(1.0), 0.8413447460685429, 1e-12);
  EXPECT_NEAR(normal_cdf(-1.0), 1.0 - normal_cdf(1.0), 1e-15);
  EXPECT_NEAR(normal_cdf(1.6448536269514722), 0.95, 1e-12);
}

TEST(Normal, QuantileInvertsCdf) {
  for (double q : {0.001, 0.01, 0.05, 0.25, 0.5, 0.75, 0.95, 0.99, 0.999}) {
    EXPECT_NEAR(normal_cdf(normal_quantile(q)), q, 1e-12) << "q=" << q;
  }
  EXPECT_NEAR(normal_quantile(0.5), 0.0, 1e-12);
  // Symmetry: z_q = -z_{1-q}.
  EXPECT_NEAR(normal_quantile(0.95), -normal_quantile(0.05), 1e-12);
}

TEST(Normal, PdfIsTheCdfDerivative) {
  const double h = 1e-6;
  for (double z : {-2.0, -0.5, 0.0, 0.7, 1.8}) {
    const double numeric = (normal_cdf(z + h) - normal_cdf(z - h)) / (2 * h);
    EXPECT_NEAR(normal_pdf(z), numeric, 1e-8) << "z=" << z;
  }
}

TEST(Canonical, ConstantIsDeterministic) {
  const Canonical c = Canonical::constant(3e-10);
  EXPECT_DOUBLE_EQ(c.mean, 3e-10);
  EXPECT_DOUBLE_EQ(c.variance(), 0.0);
  EXPECT_DOUBLE_EQ(c.quantile(0.95), 3e-10);
  EXPECT_DOUBLE_EQ(c.prob_below(4e-10), 1.0);
  EXPECT_DOUBLE_EQ(c.prob_below(2e-10), 0.0);
}

Canonical make(double mean, double s0, double s1, double s2, double rand) {
  Canonical c;
  c.mean = mean;
  c.sens = {s0, s1, s2};
  c.sigma_rand = rand;
  return c;
}

TEST(Canonical, SumIsExact) {
  const Canonical a = make(1e-10, 2e-12, -3e-12, 1e-12, 4e-12);
  const Canonical b = make(2e-10, -1e-12, 5e-12, 0.0, 3e-12);
  const Canonical s = a + b;
  EXPECT_DOUBLE_EQ(s.mean, 3e-10);
  // Shared axes add coefficient-wise...
  EXPECT_DOUBLE_EQ(s.sens[0], 1e-12);
  EXPECT_DOUBLE_EQ(s.sens[1], 2e-12);
  EXPECT_DOUBLE_EQ(s.sens[2], 1e-12);
  // ...independent residuals in quadrature.
  EXPECT_NEAR(s.sigma_rand, std::hypot(4e-12, 3e-12), 1e-24);
}

TEST(Canonical, QuantilesMatchTheImpliedNormal) {
  const Canonical c = make(1e-9, 30e-12, -40e-12, 0.0, 50e-12);
  const double sigma =
      std::sqrt(30e-12 * 30e-12 + 40e-12 * 40e-12 + 50e-12 * 50e-12);
  EXPECT_NEAR(c.sigma(), sigma, 1e-24);
  EXPECT_NEAR(c.quantile(0.5), 1e-9, 1e-21);
  EXPECT_NEAR(c.quantile(0.95), 1e-9 + 1.6448536269514722 * sigma, 1e-15);
  EXPECT_NEAR(c.prob_below(c.quantile(0.99)), 0.99, 1e-12);
}

TEST(StatisticalMax, DegeneratesToTheLargerMean) {
  // Perfectly correlated forms (identical sensitivities): max(A, B) is
  // whichever mean dominates, with the shared spread intact.
  const Canonical a = make(1e-9, 20e-12, 10e-12, 0.0, 0.0);
  const Canonical b = make(1.2e-9, 20e-12, 10e-12, 0.0, 0.0);
  const Canonical m = statistical_max(a, b);
  EXPECT_DOUBLE_EQ(m.mean, b.mean);
  EXPECT_DOUBLE_EQ(m.sens[0], b.sens[0]);
  EXPECT_DOUBLE_EQ(m.sigma_rand, 0.0);
}

TEST(StatisticalMax, FarSeparatedMeansPickTheWinner) {
  const Canonical a = make(1e-9, 10e-12, 0.0, 0.0, 5e-12);
  const Canonical b = make(2e-9, 0.0, 8e-12, 0.0, 5e-12);
  const Canonical m = statistical_max(a, b);
  // 1 ns apart at ~10 ps sigma: tightness is essentially 0/1.
  EXPECT_NEAR(m.mean, b.mean, 1e-15);
  EXPECT_NEAR(m.sens[1], b.sens[1], 1e-14);
  EXPECT_NEAR(m.sens[0], 0.0, 1e-14);
  EXPECT_NEAR(m.sigma(), b.sigma(), 1e-14);
}

TEST(StatisticalMax, MatchesMonteCarloMoments) {
  // Partially correlated pair: shared axis 0, opposing axis 1, private
  // residuals. Clark's mean and sigma must match brute-force sampling of
  // the same joint distribution.
  const Canonical a = make(1.0e-9, 40e-12, 25e-12, 0.0, 20e-12);
  const Canonical b = make(1.02e-9, 40e-12, -30e-12, 10e-12, 15e-12);
  const Canonical m = statistical_max(a, b);

  std::mt19937 rng(12345);
  std::normal_distribution<double> unit(0.0, 1.0);
  const std::size_t n = 200000;
  double sum = 0.0;
  double sum2 = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double x0 = unit(rng);
    const double x1 = unit(rng);
    const double x2 = unit(rng);
    const double va = a.mean + a.sens[0] * x0 + a.sens[1] * x1 +
                      a.sens[2] * x2 + a.sigma_rand * unit(rng);
    const double vb = b.mean + b.sens[0] * x0 + b.sens[1] * x1 +
                      b.sens[2] * x2 + b.sigma_rand * unit(rng);
    const double v = std::max(va, vb);
    sum += v;
    sum2 += v * v;
  }
  const double mc_mean = sum / static_cast<double>(n);
  const double mc_sigma =
      std::sqrt(sum2 / static_cast<double>(n) - mc_mean * mc_mean);
  // Clark's mean and variance are exact for the jointly normal pair; the
  // tolerance is Monte-Carlo noise (~sigma/sqrt(n)), not model error.
  EXPECT_NEAR(m.mean, mc_mean, 5e-13);
  EXPECT_NEAR(m.sigma(), mc_sigma, 2e-12);
  // The max of two normals is super-mean and the canonical match keeps it.
  EXPECT_GE(m.mean, std::max(a.mean, b.mean));
}

TEST(StatisticalMax, CommutesAndDominatesSummands) {
  const Canonical a = make(1.0e-9, 40e-12, 25e-12, 5e-12, 20e-12);
  const Canonical b = make(0.98e-9, -30e-12, 35e-12, 0.0, 10e-12);
  const Canonical ab = statistical_max(a, b);
  const Canonical ba = statistical_max(b, a);
  EXPECT_NEAR(ab.mean, ba.mean, 1e-21);
  EXPECT_NEAR(ab.sigma(), ba.sigma(), 1e-21);
  for (std::size_t i = 0; i < kNAxes; ++i) {
    EXPECT_NEAR(ab.sens[i], ba.sens[i], 1e-21) << "axis " << i;
  }
  EXPECT_GE(ab.mean, std::max(a.mean, b.mean));
}

}  // namespace
}  // namespace charlie::sta
