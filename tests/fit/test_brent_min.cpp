#include "fit/brent_min.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/error.hpp"

namespace charlie::fit {
namespace {

TEST(BrentMin, Quadratic) {
  const auto r =
      brent_minimize([](double x) { return (x - 2.0) * (x - 2.0); }, 0.0, 5.0);
  EXPECT_NEAR(r.x, 2.0, 1e-8);
  EXPECT_NEAR(r.f, 0.0, 1e-14);
}

TEST(BrentMin, AsymmetricValley) {
  // f(x) = x^4 - 3x^3 + 2, minimum at x = 9/4.
  const auto r = brent_minimize(
      [](double x) { return std::pow(x, 4) - 3.0 * std::pow(x, 3) + 2.0; },
      0.0, 4.0);
  EXPECT_NEAR(r.x, 2.25, 1e-7);
}

TEST(BrentMin, MinimumAtBoundary) {
  const auto r = brent_minimize([](double x) { return x; }, 1.0, 3.0);
  EXPECT_NEAR(r.x, 1.0, 1e-6);
}

TEST(BrentMin, TranscendentalShape) {
  // x * exp(x) on [-3, 0] has its minimum at x = -1.
  const auto r = brent_minimize(
      [](double x) { return x * std::exp(x); }, -3.0, 0.0);
  EXPECT_NEAR(r.x, -1.0, 1e-7);
  EXPECT_NEAR(r.f, -std::exp(-1.0), 1e-10);
}

TEST(BrentMin, EmptyIntervalThrows) {
  EXPECT_THROW(brent_minimize([](double x) { return x; }, 1.0, 1.0),
               AssertionError);
}

TEST(BrentMin, ReportsIterations) {
  const auto r =
      brent_minimize([](double x) { return x * x; }, -1.0, 1.0);
  EXPECT_GT(r.iterations, 0);
  EXPECT_LT(r.iterations, 200);
}

}  // namespace
}  // namespace charlie::fit
