#include "fit/levenberg_marquardt.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/error.hpp"

namespace charlie::fit {
namespace {

TEST(LevenbergMarquardt, LinearLeastSquares) {
  // Fit y = a x + b to exact data; unique minimum (a, b) = (2, -1).
  const std::vector<double> xs{0.0, 1.0, 2.0, 3.0};
  const auto residuals = [&](const std::vector<double>& p) {
    std::vector<double> r;
    for (double x : xs) r.push_back(p[0] * x + p[1] - (2.0 * x - 1.0));
    return r;
  };
  const auto result = levenberg_marquardt(residuals, {0.0, 0.0});
  EXPECT_NEAR(result.x[0], 2.0, 1e-8);
  EXPECT_NEAR(result.x[1], -1.0, 1e-8);
  EXPECT_LT(result.cost, 1e-16);
}

TEST(LevenbergMarquardt, ExponentialCurveFit) {
  // Fit A e^{-k t} to samples of 3 e^{-0.5 t}.
  std::vector<double> ts;
  std::vector<double> ys;
  for (int i = 0; i <= 10; ++i) {
    ts.push_back(0.3 * i);
    ys.push_back(3.0 * std::exp(-0.5 * 0.3 * i));
  }
  const auto residuals = [&](const std::vector<double>& p) {
    std::vector<double> r;
    for (std::size_t i = 0; i < ts.size(); ++i) {
      r.push_back(p[0] * std::exp(-p[1] * ts[i]) - ys[i]);
    }
    return r;
  };
  const auto result = levenberg_marquardt(residuals, {1.0, 1.0});
  EXPECT_NEAR(result.x[0], 3.0, 1e-5);
  EXPECT_NEAR(result.x[1], 0.5, 1e-5);
}

TEST(LevenbergMarquardt, RosenbrockAsResiduals) {
  // Rosenbrock is a classic least-squares test: r = (1-x, 10(y-x^2)).
  const auto residuals = [](const std::vector<double>& p) {
    return std::vector<double>{1.0 - p[0], 10.0 * (p[1] - p[0] * p[0])};
  };
  const auto result = levenberg_marquardt(residuals, {-1.2, 1.0});
  EXPECT_NEAR(result.x[0], 1.0, 1e-6);
  EXPECT_NEAR(result.x[1], 1.0, 1e-6);
}

TEST(LevenbergMarquardt, OverdeterminedNoisyFit) {
  // Noisy data: cost should settle near the noise floor, not zero.
  const auto residuals = [](const std::vector<double>& p) {
    std::vector<double> r;
    const double noise[] = {0.01, -0.02, 0.015, -0.005, 0.0};
    for (int i = 0; i < 5; ++i) {
      r.push_back(p[0] * i - (1.5 * i + noise[i]));
    }
    return r;
  };
  const auto result = levenberg_marquardt(residuals, {0.0});
  EXPECT_NEAR(result.x[0], 1.5, 0.01);
  EXPECT_GT(result.cost, 0.0);
}

TEST(LevenbergMarquardt, AlreadyAtMinimum) {
  const auto residuals = [](const std::vector<double>& p) {
    return std::vector<double>{p[0] - 1.0};
  };
  const auto result = levenberg_marquardt(residuals, {1.0});
  EXPECT_TRUE(result.converged);
  EXPECT_NEAR(result.x[0], 1.0, 1e-12);
}

TEST(LevenbergMarquardt, EmptyInputsThrow) {
  EXPECT_THROW(levenberg_marquardt(
                   [](const std::vector<double>&) {
                     return std::vector<double>{0.0};
                   },
                   {}),
               AssertionError);
}

}  // namespace
}  // namespace charlie::fit
