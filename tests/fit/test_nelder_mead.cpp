#include "fit/nelder_mead.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "fit/param_transform.hpp"
#include "util/error.hpp"

namespace charlie::fit {
namespace {

TEST(NelderMead, Sphere3d) {
  const auto r = nelder_mead(
      [](const std::vector<double>& x) {
        return x[0] * x[0] + x[1] * x[1] + x[2] * x[2];
      },
      {1.0, -2.0, 0.5});
  EXPECT_TRUE(r.converged);
  for (double xi : r.x) EXPECT_NEAR(xi, 0.0, 1e-4);
}

TEST(NelderMead, Rosenbrock2d) {
  NelderMeadOptions opts;
  opts.max_evaluations = 20000;
  const auto r = nelder_mead(
      [](const std::vector<double>& x) {
        const double a = 1.0 - x[0];
        const double b = x[1] - x[0] * x[0];
        return a * a + 100.0 * b * b;
      },
      {-1.2, 1.0}, opts);
  EXPECT_NEAR(r.x[0], 1.0, 1e-3);
  EXPECT_NEAR(r.x[1], 1.0, 1e-3);
  EXPECT_LT(r.f, 1e-6);
}

TEST(NelderMead, ShiftedQuadraticWithScale) {
  // Coordinates of very different magnitude (like ohms vs farads in log
  // space after the transform).
  const auto r = nelder_mead(
      [](const std::vector<double>& x) {
        const double a = x[0] - 10.0;
        const double b = x[1] + 35.0;
        return a * a + b * b;
      },
      {9.0, -30.0});
  EXPECT_NEAR(r.x[0], 10.0, 1e-4);
  EXPECT_NEAR(r.x[1], -35.0, 1e-4);
}

TEST(NelderMead, OneDimensional) {
  const auto r = nelder_mead(
      [](const std::vector<double>& x) { return std::cosh(x[0] - 0.3); },
      {5.0});
  EXPECT_NEAR(r.x[0], 0.3, 1e-4);
}

TEST(NelderMead, RespectsEvaluationBudget) {
  NelderMeadOptions opts;
  opts.max_evaluations = 50;
  const auto r = nelder_mead(
      [](const std::vector<double>& x) {
        return std::sin(x[0]) + x[0] * x[0] * 0.01;
      },
      {3.0}, opts);
  EXPECT_LE(r.evaluations, 55);  // initial simplex may finish the last round
}

TEST(NelderMead, EmptyStartThrows) {
  EXPECT_THROW(
      nelder_mead([](const std::vector<double>&) { return 0.0; }, {}),
      AssertionError);
}

TEST(ParamTransform, RoundTrip) {
  const std::vector<double> p{37e3, 45e3, 60e-18, 0.8};
  const auto log_p = to_log_space(p);
  const auto back = from_log_space(log_p);
  for (std::size_t i = 0; i < p.size(); ++i) {
    EXPECT_NEAR(back[i] / p[i], 1.0, 1e-12);
  }
}

TEST(ParamTransform, RejectsNonPositive) {
  EXPECT_THROW(to_log_space({1.0, 0.0}), AssertionError);
  EXPECT_THROW(to_log_space({-2.0}), AssertionError);
}

TEST(ParamTransform, OptimizationInLogSpaceKeepsPositivity) {
  // Minimize (log10(x) - 3)^2 via NM in log space; solution x = 1000.
  const auto r = nelder_mead(
      [](const std::vector<double>& lx) {
        const double x = std::exp(lx[0]);
        const double d = std::log10(x) - 3.0;
        return d * d;
      },
      to_log_space({1.0}));
  EXPECT_NEAR(from_log_space(r.x)[0], 1000.0, 1.0);
}

}  // namespace
}  // namespace charlie::fit
