#include "fit/brent_root.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/error.hpp"

namespace charlie::fit {
namespace {

TEST(BrentRoot, LinearFunction) {
  EXPECT_NEAR(brent_root([](double x) { return 2.0 * x - 1.0; }, -1.0, 2.0),
              0.5, 1e-12);
}

TEST(BrentRoot, TranscendentalFunction) {
  // cos(x) = x has root ~0.7390851332151607.
  const double r =
      brent_root([](double x) { return std::cos(x) - x; }, 0.0, 1.0);
  EXPECT_NEAR(r, 0.7390851332151607, 1e-10);
}

TEST(BrentRoot, ExponentialCrossing) {
  // The shape of every delay computation in this library:
  // 0.8 e^{-t/tau} = 0.4  =>  t = tau ln 2.
  const double tau = 25e-12;
  const double r = brent_root(
      [&](double t) { return 0.8 * std::exp(-t / tau) - 0.4; }, 0.0, 1e-9);
  EXPECT_NEAR(r, tau * std::log(2.0), 1e-20);
}

TEST(BrentRoot, EndpointRoots) {
  EXPECT_DOUBLE_EQ(brent_root([](double x) { return x; }, 0.0, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(brent_root([](double x) { return x - 1.0; }, 0.0, 1.0),
                   1.0);
}

TEST(BrentRoot, InvalidBracketThrows) {
  EXPECT_THROW(
      brent_root([](double x) { return x * x + 1.0; }, -1.0, 1.0),
      AssertionError);
}

TEST(BrentRoot, SteepFunction) {
  const double r = brent_root(
      [](double x) { return std::tanh(1e6 * (x - 0.3)); }, 0.0, 1.0);
  EXPECT_NEAR(r, 0.3, 1e-9);
}

TEST(ExpandBracketRight, FindsSignChange) {
  const auto bracket = expand_bracket_right(
      [](double x) { return x - 10.0; }, 0.0, 1.0, 100.0);
  ASSERT_TRUE(bracket.has_value());
  EXPECT_LE(bracket->first, 10.0);
  EXPECT_GE(bracket->second, 10.0);
}

TEST(ExpandBracketRight, GivesUpAtLimit) {
  const auto bracket = expand_bracket_right(
      [](double) { return 1.0; }, 0.0, 1.0, 50.0);
  EXPECT_FALSE(bracket.has_value());
}

TEST(FirstRootAfter, FindsFirstOfSeveral) {
  // sin has roots at pi, 2pi, ...; scanning from 0.5 must find pi.
  const auto r = first_root_after([](double x) { return std::sin(x); }, 0.5,
                                  0.25, 20.0);
  ASSERT_TRUE(r.has_value());
  EXPECT_NEAR(*r, M_PI, 1e-9);
}

TEST(FirstRootAfter, NoRootReturnsNullopt) {
  const auto r = first_root_after([](double) { return 2.0; }, 0.0, 0.1, 5.0);
  EXPECT_FALSE(r.has_value());
}

TEST(FirstRootAfter, RootAtScanStart) {
  const auto r =
      first_root_after([](double x) { return x; }, 0.0, 0.1, 5.0);
  ASSERT_TRUE(r.has_value());
  EXPECT_DOUBLE_EQ(*r, 0.0);
}

// Property sweep: Brent recovers known roots of x^3 - c across magnitudes.
class CubeRoot : public ::testing::TestWithParam<double> {};

TEST_P(CubeRoot, Recovers) {
  const double c = GetParam();
  const double r = brent_root(
      [&](double x) { return x * x * x - c; }, 0.0, std::cbrt(c) * 2 + 1.0);
  EXPECT_NEAR(r, std::cbrt(c), 1e-9 * std::max(1.0, std::cbrt(c)));
}

INSTANTIATE_TEST_SUITE_P(Magnitudes, CubeRoot,
                         ::testing::Values(1e-6, 1e-3, 1.0, 8.0, 1e3, 1e6));

}  // namespace
}  // namespace charlie::fit
